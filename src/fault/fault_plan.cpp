#include "fault/fault_plan.hpp"

#include <algorithm>
#include <charconv>
#include <tuple>

#include "par/seed.hpp"
#include "sim/rng.hpp"

namespace stig::fault {
namespace {

/// Parses an unsigned integer at the front of `s`, advancing it. False on
/// no digits or overflow.
bool eat_u64(std::string_view& s, std::uint64_t& out) {
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  if (ec != std::errc{} || ptr == s.data()) return false;
  s.remove_prefix(static_cast<std::size_t>(ptr - s.data()));
  return true;
}

/// Parses a signed 32-bit integer at the front of `s`, advancing it.
bool eat_i32(std::string_view& s, std::int32_t& out) {
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  if (ec != std::errc{} || ptr == s.data()) return false;
  s.remove_prefix(static_cast<std::size_t>(ptr - s.data()));
  return true;
}

/// Consumes a literal prefix; false when absent.
bool eat(std::string_view& s, std::string_view lit) {
  if (!s.starts_with(lit)) return false;
  s.remove_prefix(lit.size());
  return true;
}

bool parse_one(std::string_view item, FaultPlan& plan) {
  std::uint64_t robot = 0;
  if (eat(item, "crash:")) {
    CrashFault f;
    if (!eat_u64(item, robot) || !eat(item, "@") ||
        !eat_u64(item, f.at) || !item.empty()) {
      return false;
    }
    f.robot = static_cast<sim::RobotIndex>(robot);
    plan.crashes.push_back(f);
    return true;
  }
  if (eat(item, "stall:")) {
    StallFault f;
    if (!eat_u64(item, robot) || !eat(item, "@") ||
        !eat_u64(item, f.from) || !eat(item, "+") ||
        !eat_u64(item, f.instants) || !item.empty() || f.instants == 0) {
      return false;
    }
    f.robot = static_cast<sim::RobotIndex>(robot);
    plan.stalls.push_back(f);
    return true;
  }
  if (eat(item, "jitter:")) {
    JitterFault f;
    if (!eat_u64(item, robot) || !eat(item, "@") ||
        !eat_u64(item, f.at) || !eat(item, ":") ||
        !eat_i32(item, f.dx_ticks) || !eat(item, ",") ||
        !eat_i32(item, f.dy_ticks) || !item.empty()) {
      return false;
    }
    f.robot = static_cast<sim::RobotIndex>(robot);
    plan.jitters.push_back(f);
    return true;
  }
  if (eat(item, "burst:")) {
    BurstFault f;
    if (!eat_u64(item, robot) || !eat(item, "@") ||
        !eat_u64(item, f.nth_bit) || !eat(item, "x") ||
        !eat_u64(item, f.width) || !item.empty() || f.width == 0) {
      return false;
    }
    f.robot = static_cast<sim::RobotIndex>(robot);
    plan.bursts.push_back(f);
    return true;
  }
  if (eat(item, "corrupt:")) {
    CorruptFault f;
    if (!eat_u64(item, robot) || !eat(item, "@") ||
        !eat_u64(item, f.at) || !eat(item, ":")) {
      return false;
    }
    const auto target = corrupt_target_from_name(item);
    if (!target) return false;
    f.robot = static_cast<sim::RobotIndex>(robot);
    f.target = *target;
    plan.corrupts.push_back(f);
    return true;
  }
  return false;
}

}  // namespace

const char* corrupt_target_name(CorruptTarget target) noexcept {
  switch (target) {
    case CorruptTarget::phase: return "phase";
    case CorruptTarget::cursor: return "cursor";
    case CorruptTarget::parser: return "parser";
    case CorruptTarget::naming: return "naming";
  }
  return "unknown";
}

std::optional<CorruptTarget> corrupt_target_from_name(
    std::string_view name) noexcept {
  for (std::size_t i = 0; i < kCorruptTargetCount; ++i) {
    const auto t = static_cast<CorruptTarget>(i);
    if (name == corrupt_target_name(t)) return t;
  }
  return std::nullopt;
}

void normalize(FaultPlan& plan) {
  const auto sort_unique = [](auto& v, auto key) {
    std::sort(v.begin(), v.end(), [&](const auto& a, const auto& b) {
      return key(a) < key(b);
    });
    v.erase(std::unique(v.begin(), v.end()), v.end());
  };
  sort_unique(plan.crashes, [](const CrashFault& f) {
    return std::make_tuple(f.robot, f.at);
  });
  // A robot crashes once; the earliest instant wins.
  plan.crashes.erase(
      std::unique(plan.crashes.begin(), plan.crashes.end(),
                  [](const CrashFault& a, const CrashFault& b) {
                    return a.robot == b.robot;
                  }),
      plan.crashes.end());
  sort_unique(plan.stalls, [](const StallFault& f) {
    return std::make_tuple(f.robot, f.from, f.instants);
  });
  sort_unique(plan.jitters, [](const JitterFault& f) {
    return std::make_tuple(f.robot, f.at, f.dx_ticks, f.dy_ticks);
  });
  sort_unique(plan.bursts, [](const BurstFault& f) {
    return std::make_tuple(f.robot, f.nth_bit, f.width);
  });
  sort_unique(plan.corrupts, [](const CorruptFault& f) {
    return std::make_tuple(f.robot, f.at, f.target);
  });
}

FaultPlan sample_fault_plan(std::uint64_t seed,
                            const FaultPlanShape& shape) {
  FaultPlan plan;
  if (shape.robots == 0 || shape.horizon == 0) return plan;
  sim::Rng rng(par::mix_seed(seed ^ 0xfa517ULL));
  const auto robot = [&] {
    return static_cast<sim::RobotIndex>(
        rng.uniform_int(0, shape.robots - 1));
  };
  const auto instant = [&] { return rng.uniform_int(0, shape.horizon - 1); };

  const std::uint64_t n_crashes = rng.uniform_int(0, shape.max_crashes);
  for (std::uint64_t k = 0; k < n_crashes; ++k) {
    plan.crashes.push_back(CrashFault{robot(), instant()});
  }
  const std::uint64_t n_stalls = rng.uniform_int(0, shape.max_stalls);
  for (std::uint64_t k = 0; k < n_stalls; ++k) {
    StallFault f;
    f.robot = robot();
    f.from = instant();
    f.instants = rng.uniform_int(1, std::max<sim::Time>(1, shape.stall_max));
    plan.stalls.push_back(f);
  }
  const std::uint64_t n_jitters = rng.uniform_int(0, shape.max_jitters);
  for (std::uint64_t k = 0; k < n_jitters; ++k) {
    JitterFault f;
    f.robot = robot();
    f.at = instant();
    const auto tick = [&] {
      const auto mag = static_cast<std::int32_t>(
          rng.uniform_int(0, static_cast<std::uint64_t>(
                                 std::max(1, shape.jitter_ticks_max))));
      return rng.flip(0.5) ? mag : -mag;
    };
    f.dx_ticks = tick();
    f.dy_ticks = tick();
    plan.jitters.push_back(f);
  }
  const std::uint64_t n_bursts = rng.uniform_int(0, shape.max_bursts);
  for (std::uint64_t k = 0; k < n_bursts; ++k) {
    BurstFault f;
    f.robot = robot();
    f.nth_bit = rng.uniform_int(0, shape.burst_bit_max);
    f.width = rng.uniform_int(1, std::max<std::uint64_t>(1,
                                                         shape.burst_width_max));
    plan.bursts.push_back(f);
  }
  // Corruptions draw after every pre-stabilization category so plans
  // sampled under the old shape are bit-identical (max_corrupts == 0 never
  // perturbs the sequence of draws that produced them).
  const std::uint64_t n_corrupts = rng.uniform_int(0, shape.max_corrupts);
  for (std::uint64_t k = 0; k < n_corrupts; ++k) {
    CorruptFault f;
    f.robot = robot();
    f.at = instant();
    f.target = static_cast<CorruptTarget>(
        rng.uniform_int(0, kCorruptTargetCount - 1));
    plan.corrupts.push_back(f);
  }
  normalize(plan);
  return plan;
}

std::string format_fault_plan(const FaultPlan& plan) {
  std::string out;
  const auto sep = [&] {
    if (!out.empty()) out += ';';
  };
  for (const CrashFault& f : plan.crashes) {
    sep();
    out += "crash:" + std::to_string(f.robot) + "@" + std::to_string(f.at);
  }
  for (const StallFault& f : plan.stalls) {
    sep();
    out += "stall:" + std::to_string(f.robot) + "@" +
           std::to_string(f.from) + "+" + std::to_string(f.instants);
  }
  for (const JitterFault& f : plan.jitters) {
    sep();
    out += "jitter:" + std::to_string(f.robot) + "@" +
           std::to_string(f.at) + ":" + std::to_string(f.dx_ticks) + "," +
           std::to_string(f.dy_ticks);
  }
  for (const BurstFault& f : plan.bursts) {
    sep();
    out += "burst:" + std::to_string(f.robot) + "@" +
           std::to_string(f.nth_bit) + "x" + std::to_string(f.width);
  }
  for (const CorruptFault& f : plan.corrupts) {
    sep();
    out += "corrupt:" + std::to_string(f.robot) + "@" +
           std::to_string(f.at) + ":" + corrupt_target_name(f.target);
  }
  return out;
}

std::optional<FaultPlan> parse_fault_plan(std::string_view text) {
  FaultPlan plan;
  while (!text.empty()) {
    const std::size_t semi = text.find(';');
    const std::string_view item = text.substr(0, semi);
    if (!parse_one(item, plan)) return std::nullopt;
    if (semi == std::string_view::npos) break;
    text.remove_prefix(semi + 1);
  }
  // Duplicate hardening: anything normalize() would drop — an exact
  // repeat, or a second crash for an already-crashed robot — is not a
  // valid schedule. Normalized plans still round-trip unchanged.
  FaultPlan canon = plan;
  normalize(canon);
  if (canon.size() != plan.size()) return std::nullopt;
  return plan;
}

}  // namespace stig::fault
