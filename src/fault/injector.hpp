// FaultInjector — applies a FaultPlan to a running engine.
//
// The injector is the sim::StepInterceptor the engine consults every
// instant: it masks crashed and stalled robots out of the scheduler's
// activation set, displaces jittered robots after the instant's moves, and
// emits one FaultInjected telemetry event the first time each scheduled
// fault takes effect (so the watchdog's crash_silence invariant arms at the
// right instant, and traces show the faults alongside the protocol
// activity).
//
// Burst faults (decode corruption) live in the message layer, not the
// engine — `arm_bursts` plants them on a ChatNetwork up front.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "fault/fault_plan.hpp"
#include "obs/cov.hpp"
#include "obs/sink.hpp"
#include "sim/engine.hpp"

namespace stig::core {
class ChatNetwork;
}  // namespace stig::core

namespace stig::fault {

class FaultInjector final : public sim::StepInterceptor {
 public:
  /// Takes the plan by value (normalized copies are cheap; the injector
  /// must outlive the engine it is attached to, not the plan's source).
  explicit FaultInjector(FaultPlan plan);

  /// Routes FaultInjected events into `sink` (not owned; null = silent).
  void set_event_sink(obs::EventSink* sink) noexcept { sink_ = sink; }

  /// Attaches a coverage map (not owned; null detaches): each fault kind
  /// that actually takes effect records a fault-domain
  /// fault.plan -> fault.<kind> edge, so a corpus proves which fault
  /// classes it exercised (not just scheduled).
  void set_coverage(obs::cov::CovMap* map) noexcept {
    cov_ = map;
    if (cov_ != nullptr) cov_plan_ = cov_->state("fault.plan");
  }

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

  // sim::StepInterceptor
  void on_activation(sim::Time t, sim::ActivationSet& active) override;
  void on_positions(sim::Time t,
                    std::span<geom::Vec2> positions) override;
  [[nodiscard]] bool crashed(sim::RobotIndex i, sim::Time t) const override;

  /// The instant robot `i` crash-stops, if the plan crashes it at all.
  [[nodiscard]] std::optional<sim::Time> crash_time(
      sim::RobotIndex i) const;

 private:
  void emit(sim::Time t, sim::RobotIndex robot, const char* kind,
            double value);

  FaultPlan plan_;
  std::vector<bool> crash_fired_;
  std::vector<bool> stall_fired_;
  std::vector<bool> jitter_fired_;
  obs::EventSink* sink_ = nullptr;
  obs::cov::CovMap* cov_ = nullptr;  ///< Not owned; null when off.
  obs::cov::StateId cov_plan_ = obs::cov::kInvalidState;
};

/// Arms the plan's burst faults on `net` via inject_decode_fault. At most
/// one burst per robot is armed (a ChatRobot holds one pending fault; the
/// normalized plan's first burst per robot wins). Emits a FaultInjected
/// "burst" event at t=0 per armed fault into `sink` (null = silent); each
/// armed burst also records a fault.plan -> fault.burst coverage edge into
/// `cov` (null = off).
std::size_t arm_bursts(core::ChatNetwork& net, const FaultPlan& plan,
                       obs::EventSink* sink,
                       obs::cov::CovMap* cov = nullptr);

/// Schedules the plan's transient-corruption faults on `net` via
/// schedule_corruption, which also arms every robot's stabilization
/// machinery (naming audits run only on armed robots, so fault-free runs
/// stay allocation-free). Unlike arm_bursts this emits nothing here: the
/// network itself emits the FaultInjected "corrupt_<target>" event and the
/// fault.plan -> fault.corrupt_<target> coverage edge at the instant each
/// corruption is actually applied. Out-of-range robots are skipped.
std::size_t arm_corruptions(core::ChatNetwork& net, const FaultPlan& plan);

}  // namespace stig::fault
