// RedundantChatNetwork — crash-masking group redundancy (paper Section 6).
//
// The paper remarks that the chatting protocols tolerate faults through
// redundancy: since every robot decodes every message, a logical endpoint
// can be backed by a *group* of g physical robots, and a message survives
// as long as some group member delivers it. This layer realizes that
// construction: each of the g group members runs a full, independent copy
// of the swarm (a "lane" — an entire ChatNetwork with its own engine,
// scheduler stream and protocol fleet, seeded via par::derive_seed so the
// lanes are deterministic but distinct). Physical robot `lane * n +
// logical` is lane `lane`'s copy of logical robot `logical`; a FaultPlan
// over physical indices is sliced per lane and applied by a per-lane
// FaultInjector.
//
// Every send/broadcast is queued on all lanes. After the run, deliveries
// are voted per logical stream (sender, unicast/broadcast) and per
// delivery ordinal: the payload most lanes agree on wins (ties prefer the
// lane with the longest stream — the least-faulted witness — then the
// lowest lane). Crash-stop faults only ever *truncate* a lane's delivery
// sequence (CRC guards partial frames), so with any g >= 2 and at most
// g-1 crashed members per stream the voted payloads equal the fault-free
// ones — the acceptance property test pins this. Corrupting faults
// (bursts) are masked up to a minority of lanes.
//
// Asynchronous protocols block forever on a crashed peer (the Lemma 4.1
// ack never arrives), so lanes with crashes may never reach quiescence.
// `run_until_settled` therefore watches *progress* (bits sent + decoded):
// a lane that is neither quiescent nor making progress for a full stall
// window is declared settled — its surviving deliveries stand.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/chat_network.hpp"
#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"
#include "sim/schedule_log.hpp"

namespace stig::fault {

/// FNV-1a over `bytes`, 32-bit — the payload fingerprint MaskedDelivery
/// events carry (exposed for tests and the watchdog's expectations).
[[nodiscard]] std::uint32_t fnv1a32(std::span<const std::uint8_t> bytes);

/// The sub-plan lane `lane` applies: faults whose physical robot lives in
/// [lane*n, (lane+1)*n), re-indexed to the lane's logical 0..n-1.
[[nodiscard]] FaultPlan lane_slice(const FaultPlan& plan, std::size_t lane,
                                   std::size_t n);

struct RedundantOptions {
  core::ChatNetworkOptions base;  ///< Per-lane seed derives from base.seed.
  std::size_t group_size = 2;     ///< g physical members per endpoint.
  FaultPlan plan;                 ///< Physical indices (lane * n + logical).
  bool record_schedules = false;  ///< Keep per-lane ScheduleLogs (digest).
};

/// One voted delivery (logical indices; same shape as core::Delivery).
struct VotedDelivery {
  sim::RobotIndex from = 0;
  sim::RobotIndex to = 0;
  bool broadcast = false;
  std::size_t ordinal = 0;        ///< Index on the (from, broadcast) stream.
  std::size_t agreeing_lanes = 0; ///< Lanes that delivered this payload.
  std::vector<std::uint8_t> payload;
};

class RedundantChatNetwork {
 public:
  /// `positions` are the n *logical* robot positions; every lane gets its
  /// own copy. Requires group_size >= 1.
  RedundantChatNetwork(std::vector<geom::Vec2> positions,
                       RedundantOptions options);

  [[nodiscard]] std::size_t logical_count() const noexcept { return n_; }
  [[nodiscard]] std::size_t group_size() const noexcept {
    return lanes_.size();
  }

  /// Queues the message on every lane.
  void send(sim::RobotIndex from, sim::RobotIndex to,
            std::span<const std::uint8_t> payload);
  void broadcast(sim::RobotIndex from,
                 std::span<const std::uint8_t> payload);

  struct RunResult {
    bool all_quiescent = false;  ///< Every lane drained (crashed robots
                                 ///< exempt — see ChatNetwork::quiescent).
    sim::Time instants = 0;      ///< Max instants any lane consumed.
    std::size_t stalled_lanes = 0;  ///< Lanes settled by the stall window.
    std::size_t timeout_lanes = 0;  ///< Lanes that hit max_instants while
                                    ///< still progressing — the masked
                                    ///< run's notion of non-termination.
    /// Lanes whose engine threw mid-run (e.g. a jitter shove collided
    /// robots): the lane is settled, its deliveries so far still vote.
    /// One entry per failed lane: (lane, what()).
    std::vector<std::pair<std::size_t, std::string>> lane_errors;
  };

  /// Runs every lane until it is quiescent, makes no progress for
  /// `stall_window` instants, or hits `max_instants`. Quiescent lanes then
  /// run `settle_tail` further instants (the decode catch-up tail the
  /// single-lane harness also runs) before the vote.
  RunResult run_until_settled(sim::Time max_instants,
                              sim::Time stall_window,
                              sim::Time settle_tail = 0);

  /// Voted deliveries for logical robot `r`, in deterministic order
  /// (streams by (broadcast, sender), then ordinal). Valid after
  /// `run_until_settled`.
  [[nodiscard]] const std::vector<VotedDelivery>& voted(
      sim::RobotIndex r) const {
    return voted_.at(r);
  }

  /// Routes MaskedDelivery events (one per voted delivery, emitted during
  /// the vote) into `sink` (not owned; null = silent).
  void set_event_sink(obs::EventSink* sink) noexcept { sink_ = sink; }

  /// Routes lane `k`'s full telemetry (engine + protocol robots + its
  /// FaultInjector) into `sink` — per-lane watchdogs attach here.
  void attach_lane_sink(std::size_t k, obs::EventSink* sink);

  /// Attaches a coverage map (not owned; null detaches) to every lane
  /// (protocol/frame/sched domains), every injector (fault domain), and
  /// the vote itself: each voted delivery records a fault-domain
  /// vote.begin -> vote.{unanimous,majority,plurality} edge classifying
  /// how much lane agreement backed it.
  void attach_coverage(obs::cov::CovMap* map);

  [[nodiscard]] core::ChatNetwork& lane(std::size_t k) {
    return *lanes_.at(k);
  }
  [[nodiscard]] const core::ChatNetwork& lane(std::size_t k) const {
    return *lanes_.at(k);
  }
  [[nodiscard]] const FaultInjector& injector(std::size_t k) const {
    return *injectors_.at(k);
  }
  /// Lane `k`'s recorded schedule (record_schedules only).
  [[nodiscard]] const sim::ScheduleLog& lane_log(std::size_t k) const {
    return logs_.at(k);
  }

 private:
  void vote(sim::Time t);

  std::size_t n_ = 0;
  // Injectors are declared before lanes so every engine detaches (is
  // destroyed) before the interceptor it points at.
  std::vector<sim::ScheduleLog> logs_;
  std::vector<std::unique_ptr<FaultInjector>> injectors_;
  std::vector<std::unique_ptr<core::ChatNetwork>> lanes_;
  std::vector<std::size_t> bursts_armed_;  ///< Per lane, for coverage.
  std::vector<std::vector<VotedDelivery>> voted_;  ///< Per logical robot.
  obs::EventSink* sink_ = nullptr;
  obs::cov::CovMap* cov_ = nullptr;  ///< Not owned; null when off.
  obs::cov::StateId cov_vote_ = obs::cov::kInvalidState;
};

}  // namespace stig::fault
