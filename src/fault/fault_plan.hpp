// FaultPlan — a deterministic, serializable schedule of injected faults.
//
// A plan is plain data: which robots crash-stop and when, which stall for a
// window, which get shoved by a transient position jitter, and which misread
// a burst of decoded signals. Plans are sampled from a seed (via
// par::derive_seed, so batch fuzzing stays job-count invariant), rendered to
// a compact single-line string for repro files, and parsed back bit-for-bit
// — `stigsim --replay` of a faulted case re-runs the *same* faults.
//
// The plan is pure description. Applying it is the FaultInjector's job
// (crash/stall/jitter, through sim::StepInterceptor) plus
// `arm_bursts` (decode-fault bursts, through core::ChatNetwork).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/types.hpp"

namespace stig::fault {

/// Jitter displacements are integer multiples of this global-unit tick so a
/// plan round-trips through its string form exactly (doubles would not).
inline constexpr double kJitterTick = 1.0 / 1024.0;

/// Robot `robot` crash-stops at instant `at`: it is never activated at or
/// after `at` (its pending messages are lost — that is the point).
struct CrashFault {
  sim::RobotIndex robot = 0;
  sim::Time at = 0;
  friend bool operator==(const CrashFault&, const CrashFault&) = default;
};

/// Robot `robot` is stuck for `instants` instants starting at `from`: the
/// scheduler may pick it but it does not act. Models a transient wedge (the
/// crash-stop's recoverable cousin).
struct StallFault {
  sim::RobotIndex robot = 0;
  sim::Time from = 0;
  sim::Time instants = 1;
  friend bool operator==(const StallFault&, const StallFault&) = default;
};

/// Robot `robot` is displaced by (dx, dy) * kJitterTick global units after
/// the moves of instant `at` — a shove / mislocalized recovery.
struct JitterFault {
  sim::RobotIndex robot = 0;
  sim::Time at = 0;
  std::int32_t dx_ticks = 0;
  std::int32_t dy_ticks = 0;
  friend bool operator==(const JitterFault&, const JitterFault&) = default;
};

/// Robot `robot` misreads `width` consecutive decoded signals starting at
/// its `nth_bit`-th (0-based, across all streams) — a frame-corruption
/// burst. Armed through ChatRobot::inject_decode_fault.
struct BurstFault {
  sim::RobotIndex robot = 0;
  std::uint64_t nth_bit = 0;
  std::uint64_t width = 1;
  friend bool operator==(const BurstFault&, const BurstFault&) = default;
};

/// Which mutable state machine a transient corruption scrambles. The
/// targets are the *real* per-robot state machines, not abstractions:
/// protocol phase bookkeeping, the outbox bit cursor, the frame-parser
/// assembly state, and the geometry-derived naming tables.
enum class CorruptTarget : std::uint8_t {
  phase = 0,   ///< Protocol phase counters / per-peer bookkeeping.
  cursor = 1,  ///< Outbox bit cursor of the sending side.
  parser = 2,  ///< FrameParser assembly state of the receiving side.
  naming = 3,  ///< Rank/naming tables derived from the t0 geometry.
};

inline constexpr std::size_t kCorruptTargetCount = 4;

[[nodiscard]] const char* corrupt_target_name(CorruptTarget target) noexcept;
[[nodiscard]] std::optional<CorruptTarget> corrupt_target_from_name(
    std::string_view name) noexcept;

/// Robot `robot`'s state machine `target` is overwritten with arbitrary
/// seed-derived values after the moves of instant `at` — the transient
/// fault class of the self-stabilization companions. The plan only
/// schedules the damage; recovering is the protocol's job (see
/// docs/STABILIZATION.md for the per-target resync semantics).
struct CorruptFault {
  sim::RobotIndex robot = 0;
  sim::Time at = 0;
  CorruptTarget target = CorruptTarget::phase;
  friend bool operator==(const CorruptFault&, const CorruptFault&) = default;
};

/// The full schedule. Empty vectors mean a fault-free run.
struct FaultPlan {
  std::vector<CrashFault> crashes;
  std::vector<StallFault> stalls;
  std::vector<JitterFault> jitters;
  std::vector<BurstFault> bursts;
  std::vector<CorruptFault> corrupts;

  [[nodiscard]] bool empty() const noexcept {
    return crashes.empty() && stalls.empty() && jitters.empty() &&
           bursts.empty() && corrupts.empty();
  }
  /// Total number of scheduled faults.
  [[nodiscard]] std::size_t size() const noexcept {
    return crashes.size() + stalls.size() + jitters.size() + bursts.size() +
           corrupts.size();
  }
  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;
};

/// Sorts each category (by robot, then time/bit) and drops exact
/// duplicates, so equal plans have equal strings. At most one crash per
/// robot survives (the earliest — a robot crashes once).
void normalize(FaultPlan& plan);

/// Sampling envelope: how many faults of each kind at most, and the ranges
/// their parameters are drawn from. `robots` and `horizon` come from the
/// case being fuzzed.
struct FaultPlanShape {
  std::size_t robots = 2;       ///< Faults target robots < this.
  sim::Time horizon = 1000;     ///< Crash/stall/jitter instants < this.
  std::size_t max_crashes = 1;
  std::size_t max_stalls = 1;
  std::size_t max_jitters = 1;
  std::size_t max_bursts = 1;
  sim::Time stall_max = 64;             ///< Longest stall window.
  std::int32_t jitter_ticks_max = 256;  ///< Max |dx|, |dy| in ticks.
  std::uint64_t burst_bit_max = 512;    ///< Latest burst start (nth bit).
  std::uint64_t burst_width_max = 6;    ///< Widest burst.
  /// Default 0 so plans sampled before the stabilization layer existed stay
  /// bit-identical (the corruption draws append after every older category).
  std::size_t max_corrupts = 0;
};

/// Draws a plan from `seed` within `shape` (0..max faults per category,
/// uniform parameters). Deterministic: a pure function of its arguments.
/// The result is normalized.
[[nodiscard]] FaultPlan sample_fault_plan(std::uint64_t seed,
                                          const FaultPlanShape& shape);

/// Compact single-line form, e.g.
/// "crash:1@120;stall:2@40+10;jitter:0@77:307,-215;burst:1@10x4;corrupt:0@9:phase".
/// Empty plan renders as "". Normalize first for a canonical string.
[[nodiscard]] std::string format_fault_plan(const FaultPlan& plan);

/// Parses the format_fault_plan form; nullopt on malformed input.
/// Round-trip: parse(format(normalized plan)) == that plan. Plans that
/// normalize() would shrink are rejected too: an exact-duplicate fault spec
/// or a second crash for the same robot is a contradiction, not a schedule.
[[nodiscard]] std::optional<FaultPlan> parse_fault_plan(
    std::string_view text);

}  // namespace stig::fault
