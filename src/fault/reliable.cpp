#include "fault/reliable.hpp"

#include <algorithm>

#include "obs/event.hpp"

namespace stig::fault {
namespace {

constexpr std::size_t kHeaderBytes = 8;

/// Strips the id header; nullopt when the blob is too short to carry one
/// (never produced by this messenger, but received() stays total).
std::optional<std::uint64_t> peel_id(
    const std::vector<std::uint8_t>& wire) {
  if (wire.size() < kHeaderBytes) return std::nullopt;
  std::uint64_t id = 0;
  for (std::size_t b = 0; b < kHeaderBytes; ++b) {
    id |= static_cast<std::uint64_t>(wire[b]) << (8 * b);
  }
  return id;
}

}  // namespace

void ReliableMessenger::emit(sim::Time t, const Tracked& m,
                             const char* label) {
  if (cov_ != nullptr) {
    cov_->hit(obs::cov::Domain::fault, cov_send_, cov_->state("retry", label));
  }
  if (sink_ == nullptr) return;
  obs::Event e;
  e.type = obs::EventType::Retransmit;
  e.t = t;
  e.robot = static_cast<std::int64_t>(m.from);
  e.peer = static_cast<std::int64_t>(m.to);
  e.aux = static_cast<std::int64_t>(m.id);
  e.value = static_cast<double>(m.attempts);
  e.label = label;
  sink_->on_event(e);
}

std::uint64_t ReliableMessenger::send(
    sim::RobotIndex from, sim::RobotIndex to,
    std::span<const std::uint8_t> payload) {
  Tracked m;
  m.id = next_id_++;
  m.from = from;
  m.to = to;
  m.wire.reserve(kHeaderBytes + payload.size());
  for (std::size_t b = 0; b < kHeaderBytes; ++b) {
    m.wire.push_back(static_cast<std::uint8_t>((m.id >> (8 * b)) & 0xffU));
  }
  m.wire.insert(m.wire.end(), payload.begin(), payload.end());
  m.timeout_at = motion_.engine().now();  // Transmit on the next tick.
  tracked_.push_back(std::move(m));
  ++stats_.sent;
  return tracked_.back().id;
}

void ReliableMessenger::tick() {
  const sim::Time now = motion_.engine().now();
  for (Tracked& m : tracked_) {
    if (m.st != MessageState::pending) continue;
    if (m.ack_at && now >= *m.ack_at) {
      m.st = MessageState::acked;
      ++stats_.acked;
      if (cov_ != nullptr) {
        cov_->hit(obs::cov::Domain::fault, cov_send_,
                  cov_->state("retry.acked"));
      }
      continue;
    }
    if (now < m.timeout_at) continue;
    if (m.attempts > options_.max_retries) {
      // Retry budget spent: degrade onto the guaranteed-delivery motion
      // channel, id header and all (the receiver dedups across channels —
      // a delivered-but-unacked radio copy may already be there).
      m.st = MessageState::degraded;
      ++stats_.degraded;
      motion_.send(m.from, m.to, m.wire);
      emit(now, m, "backup");
      continue;
    }
    ++m.attempts;
    ++stats_.radio_attempts;
    if (m.attempts > 1) {
      ++stats_.retransmits;
      emit(now, m, "retry");
    }
    const core::WirelessResult r =
        radio_.transmit(now, m.from, m.to, m.wire);
    const bool ack_lost = options_.ack_loss_probability > 0.0 &&
                          ack_rng_.flip(options_.ack_loss_probability);
    m.ack_at = r.delivered && !ack_lost
                   ? std::optional<sim::Time>(now + options_.ack_delay)
                   : std::nullopt;
    // Exponential backoff: timeout doubles with every attempt.
    m.timeout_at =
        now + (options_.ack_timeout << std::min<std::size_t>(
                                          m.attempts - 1, 32));
  }
}

bool ReliableMessenger::settled() const {
  return motion_.quiescent() &&
         std::all_of(tracked_.begin(), tracked_.end(), [](const Tracked& m) {
           return m.st != MessageState::pending;
         });
}

bool ReliableMessenger::run(sim::Time max_instants) {
  for (sim::Time k = 0; k < max_instants; ++k) {
    tick();
    if (settled()) return true;
    motion_.step();
  }
  tick();
  return settled();
}

std::vector<std::vector<std::uint8_t>> ReliableMessenger::received(
    sim::RobotIndex i) {
  if (seen_.size() <= i) seen_.resize(i + 1);
  std::unordered_set<std::uint64_t>& seen = seen_[i];
  std::vector<std::vector<std::uint8_t>> out;
  const auto accept = [&](const std::vector<std::uint8_t>& wire) {
    const std::optional<std::uint64_t> id = peel_id(wire);
    if (!id) return;  // Not ours; foreign traffic is ignored.
    if (!seen.insert(*id).second) {
      ++stats_.duplicates_dropped;
      return;
    }
    out.emplace_back(wire.begin() + kHeaderBytes, wire.end());
  };
  for (const std::vector<std::uint8_t>& wire : radio_.take_received(i)) {
    accept(wire);
  }
  for (const core::Delivery& d : motion_.take_received(i)) {
    accept(d.payload);
  }
  return out;
}

std::optional<MessageState> ReliableMessenger::state(
    std::uint64_t id) const {
  for (const Tracked& m : tracked_) {
    if (m.id == id) return m.st;
  }
  return std::nullopt;
}

}  // namespace stig::fault
