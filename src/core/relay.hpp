// RoutedMessenger — wireless with one-hop relaying, then motion fallback.
//
// Extends the backup-channel idea with the paper's redundancy observation
// ("every robot is able to know all the messages sent in the system...
// any robot being able to send any message again to its addressee"):
// when a direct radio link is down but the device itself is alive, another
// robot whose links to both endpoints work can relay the message. Only if
// no relay exists does the message fall back to the motion channel.
//
// Escalation per message: direct radio -> one-hop radio relay -> motion.
#pragma once

#include <cstdint>
#include <span>

#include "core/chat_network.hpp"
#include "core/wireless.hpp"

namespace stig::core {

/// Per-path delivery counters.
struct RoutedStats {
  std::uint64_t attempts = 0;
  std::uint64_t direct = 0;
  std::uint64_t relayed = 0;
  std::uint64_t motion_fallbacks = 0;
};

class RoutedMessenger {
 public:
  /// Both references must outlive the messenger.
  RoutedMessenger(ChatNetwork& motion, WirelessChannel& radio)
      : motion_(motion), radio_(radio) {}

  /// Sends `payload`, escalating direct -> relay -> motion.
  ///
  /// The relay hop is modeled as two radio transmissions (from -> r,
  /// r -> to); both must succeed in the same call, otherwise the next
  /// candidate is tried. Relays learn the payload — the redundancy the
  /// paper embraces, not a confidentiality mechanism.
  void send(sim::RobotIndex from, sim::RobotIndex to,
            std::span<const std::uint8_t> payload) {
    ++stats_.attempts;
    const sim::Time now = motion_.engine().now();
    if (radio_.transmit(now, from, to, payload).delivered) {
      ++stats_.direct;
      return;
    }
    for (sim::RobotIndex r = 0; r < motion_.robot_count(); ++r) {
      if (r == from || r == to) continue;
      // Probe cheaply before transmitting: a relay is viable only when
      // both of its links and all three devices are healthy.
      if (radio_.device_broken(r) || radio_.link_broken(from, r) ||
          radio_.link_broken(r, to)) {
        continue;
      }
      if (radio_.transmit_via(now, from, r, to, payload).delivered) {
        ++stats_.relayed;
        return;
      }
    }
    ++stats_.motion_fallbacks;
    motion_.send(from, to, payload);
  }

  /// Drives the motion channel until all fallbacks complete.
  bool flush(sim::Time max_instants) {
    return motion_.run_until_quiescent(max_instants);
  }

  /// All payloads robot `i` has received, over both channels.
  [[nodiscard]] std::vector<std::vector<std::uint8_t>> received(
      sim::RobotIndex i) {
    std::vector<std::vector<std::uint8_t>> out = radio_.take_received(i);
    for (const Delivery& d : motion_.received(i)) out.push_back(d.payload);
    return out;
  }

  [[nodiscard]] const RoutedStats& stats() const noexcept { return stats_; }

 private:
  ChatNetwork& motion_;
  WirelessChannel& radio_;
  RoutedStats stats_;
};

}  // namespace stig::core
