// A simulated wireless channel with fault injection.
//
// The paper motivates movement signaling as a *backup* for robots whose
// communication devices are faulty (Section 1: "wireless devices are
// faulty", "zones with blocked wireless communication"). This module
// provides the thing that fails: a point-to-point radio with per-message
// loss, per-robot device failure, and global jamming windows, all
// deterministic under a seed. HybridMessenger (backup_channel.hpp) layers
// the motion channel underneath it.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_set>
#include <vector>

#include "sim/rng.hpp"
#include "sim/types.hpp"

namespace stig::core {

/// Configuration of the simulated radio.
struct WirelessOptions {
  double loss_probability = 0.0;  ///< Independent per-message drop chance.
  std::uint64_t seed = 7;
  /// Instants [jam_from, jam_until) during which nothing is delivered
  /// ("hostile environments where communication are scrambled").
  sim::Time jam_from = 0;
  sim::Time jam_until = 0;
};

/// A delivered or dropped radio message.
struct WirelessResult {
  bool delivered = false;
};

/// Point-to-point radio. Deliveries are instantaneous; the interesting part
/// is the ways it fails.
class WirelessChannel {
 public:
  WirelessChannel(std::size_t robots, WirelessOptions options)
      : options_(options), rng_(options.seed), dead_(robots, false) {}

  /// Permanently breaks robot `i`'s radio (device fault).
  void break_device(sim::RobotIndex i) { dead_.at(i) = true; }
  /// Repairs robot `i`'s radio.
  void repair_device(sim::RobotIndex i) { dead_.at(i) = false; }
  [[nodiscard]] bool device_broken(sim::RobotIndex i) const {
    return dead_.at(i);
  }

  /// Permanently breaks the (symmetric) link between two robots — e.g. an
  /// obstacle or interference between a specific pair. Devices stay up.
  void break_link(sim::RobotIndex a, sim::RobotIndex b) {
    broken_links_.insert(link_key(a, b));
  }
  /// Repairs the link.
  void repair_link(sim::RobotIndex a, sim::RobotIndex b) {
    broken_links_.erase(link_key(a, b));
  }
  [[nodiscard]] bool link_broken(sim::RobotIndex a,
                                 sim::RobotIndex b) const {
    return broken_links_.contains(link_key(a, b));
  }

  /// Attempts to transmit at instant `now`. On success the payload is
  /// appended to the receiver's queue (drained with `take_received`). The
  /// sender learns the outcome — radios have link-layer acks; that is what
  /// lets the hybrid messenger fall back deterministically.
  WirelessResult transmit(sim::Time now, sim::RobotIndex from,
                          sim::RobotIndex to,
                          std::span<const std::uint8_t> payload) {
    ++sent_;
    const bool jammed =
        now >= options_.jam_from && now < options_.jam_until;
    if (jammed || dead_.at(from) || dead_.at(to) ||
        link_broken(from, to) ||
        (options_.loss_probability > 0.0 &&
         rng_.flip(options_.loss_probability))) {
      ++dropped_;
      return WirelessResult{false};
    }
    inboxes_.push_back({from, to, {payload.begin(), payload.end()}});
    return WirelessResult{true};
  }

  /// Two-hop relayed transmission: from -> via -> to, atomically. Both
  /// hops draw their own loss; only the final addressee's inbox receives
  /// the payload (the relay forwards immediately and keeps no copy in its
  /// delivery queue — its knowledge of the payload is the redundancy the
  /// paper describes, not a queued message).
  WirelessResult transmit_via(sim::Time now, sim::RobotIndex from,
                              sim::RobotIndex via, sim::RobotIndex to,
                              std::span<const std::uint8_t> payload) {
    sent_ += 2;
    const bool jammed =
        now >= options_.jam_from && now < options_.jam_until;
    const bool hop1_ok =
        !jammed && !dead_.at(from) && !dead_.at(via) &&
        !link_broken(from, via) &&
        !(options_.loss_probability > 0.0 &&
          rng_.flip(options_.loss_probability));
    if (!hop1_ok) {
      dropped_ += 2;
      return WirelessResult{false};
    }
    const bool hop2_ok =
        !dead_.at(to) && !link_broken(via, to) &&
        !(options_.loss_probability > 0.0 &&
          rng_.flip(options_.loss_probability));
    if (!hop2_ok) {
      ++dropped_;
      return WirelessResult{false};
    }
    inboxes_.push_back({from, to, {payload.begin(), payload.end()}});
    return WirelessResult{true};
  }

  /// Drains messages delivered to robot `i`.
  [[nodiscard]] std::vector<std::vector<std::uint8_t>> take_received(
      sim::RobotIndex i) {
    std::vector<std::vector<std::uint8_t>> out;
    std::erase_if(inboxes_, [&](Entry& e) {
      if (e.to != i) return false;
      out.push_back(std::move(e.payload));
      return true;
    });
    return out;
  }

  [[nodiscard]] std::uint64_t sent() const noexcept { return sent_; }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

 private:
  struct Entry {
    sim::RobotIndex from;
    sim::RobotIndex to;
    std::vector<std::uint8_t> payload;
  };
  [[nodiscard]] static std::uint64_t link_key(sim::RobotIndex a,
                                              sim::RobotIndex b) noexcept {
    const auto lo = static_cast<std::uint64_t>(a < b ? a : b);
    const auto hi = static_cast<std::uint64_t>(a < b ? b : a);
    return (hi << 32) | lo;
  }

  WirelessOptions options_;
  sim::Rng rng_;
  std::vector<bool> dead_;
  std::unordered_set<std::uint64_t> broken_links_;
  std::vector<Entry> inboxes_;
  std::uint64_t sent_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace stig::core
