// HybridMessenger — wireless with motion-channel fallback.
//
// "In the context of robots communicating by means of communication (e.g.
// wireless), since our protocols allow robots to explicitly communicate
// even if their communication devices are faulty, our solution can serve as
// a communication backup." This class implements exactly that policy: try
// the radio; when the link-layer reports a drop (jamming, dead device,
// loss), queue the same payload on the motion channel. Either way the
// message arrives exactly once per attempt, and `delivery_rate` lets the
// fault-tolerance benchmark (E5) compare radio-only against hybrid.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/chat_network.hpp"
#include "core/wireless.hpp"

namespace stig::core {

/// Per-channel delivery counters.
struct HybridStats {
  std::uint64_t attempts = 0;
  std::uint64_t wireless_delivered = 0;
  std::uint64_t motion_fallbacks = 0;
};

class HybridMessenger {
 public:
  /// Both references must outlive the messenger.
  HybridMessenger(ChatNetwork& motion, WirelessChannel& radio)
      : motion_(motion), radio_(radio) {}

  /// Sends `payload`; falls back to the motion channel when the radio
  /// reports a drop.
  void send(sim::RobotIndex from, sim::RobotIndex to,
            std::span<const std::uint8_t> payload) {
    ++stats_.attempts;
    const WirelessResult r =
        radio_.transmit(motion_.engine().now(), from, to, payload);
    if (r.delivered) {
      ++stats_.wireless_delivered;
    } else {
      ++stats_.motion_fallbacks;
      motion_.send(from, to, payload);
    }
  }

  /// Drives the motion channel until all fallbacks are through (or the
  /// budget runs out). Radio deliveries are instantaneous and need no
  /// driving. Returns true when every fallback completed.
  bool flush(sim::Time max_instants) {
    return motion_.run_until_quiescent(max_instants);
  }

  /// All payloads robot `i` has received, over both channels.
  [[nodiscard]] std::vector<std::vector<std::uint8_t>> received(
      sim::RobotIndex i) {
    std::vector<std::vector<std::uint8_t>> out = radio_.take_received(i);
    for (const Delivery& d : motion_.received(i)) out.push_back(d.payload);
    return out;
  }

  [[nodiscard]] const HybridStats& stats() const noexcept { return stats_; }

 private:
  ChatNetwork& motion_;
  WirelessChannel& radio_;
  HybridStats stats_;
};

}  // namespace stig::core
