// ChatNetwork — the library's main entry point.
//
// Wraps the SSM engine, a scheduler and a fleet of protocol robots behind a
// message-passing API addressed by simulator robot index:
//
//   stig::core::ChatNetworkOptions opt;
//   opt.synchrony = Synchrony::synchronous;
//   opt.caps.sense_of_direction = true;
//   ChatNetwork net(positions, opt);
//   net.send(0, 3, payload);
//   net.run_until_quiescent(100'000);
//   for (const auto& m : net.received(3)) { ... }
//
// The protocol is selected from (synchrony, capabilities, robot count)
// exactly along the paper's lattice: Sync2 / SyncSliced(by_ids |
// lexicographic | relative) / Async2 / AsyncN, plus the k-segment variant on
// request. Robot frames are randomized within what the declared
// capabilities permit (rotation only without sense of direction, arbitrary
// units always, one common handedness), so running the network *is* a test
// that the protocols use no capability they were not granted.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/capabilities.hpp"
#include "geom/vec.hpp"
#include "obs/report.hpp"
#include "proto/common.hpp"
#include "sim/engine.hpp"
#include "sim/schedule_log.hpp"

namespace stig::core {

/// Which protocol ChatNetwork instantiates.
enum class ProtocolKind : unsigned char {
  automatic,  ///< Pick from synchrony, capabilities and robot count.
  sync2,      ///< Section 3.1 (requires n == 2, synchronous).
  sliced,     ///< Sections 3.2-3.4 (synchronous, any n).
  ksegment,   ///< Section 5 extension (synchronous, any n).
  async2,     ///< Section 4.1 (requires n == 2, asynchronous).
  asyncn,     ///< Section 4.2 (asynchronous, any n).
};

/// Scheduler used in asynchronous mode.
enum class SchedulerKind : unsigned char {
  bernoulli,    ///< Independent activation with probability p.
  centralized,  ///< Exactly one robot per instant, round-robin.
  ksubset,      ///< A random k-subset per instant.
  adversarial,  ///< Starves one robot to the fairness bound, rotating.
};

/// Stable lower-case name for a protocol kind ("sync2", "asyncn", ...).
[[nodiscard]] const char* protocol_kind_name(ProtocolKind kind);
/// Stable lower-case name for a scheduler kind ("bernoulli", ...).
[[nodiscard]] const char* scheduler_kind_name(SchedulerKind kind);

/// Configuration for ChatNetwork.
struct ChatNetworkOptions {
  Synchrony synchrony = Synchrony::synchronous;
  Capabilities caps;
  ProtocolKind protocol = ProtocolKind::automatic;

  double sigma = 0.25;  ///< Max travel per activation (global units).
  std::uint64_t seed = 1;  ///< Frame randomization + scheduler randomness.
  bool randomize_frames = true;  ///< Random units (and rotations when sense
                                 ///< of direction is absent).
  bool mirrored_frames = false;  ///< Left-handed frames for every robot
                                 ///< (chirality holds either way).
  bool record_positions = false;

  // Asynchronous scheduling.
  SchedulerKind scheduler = SchedulerKind::bernoulli;
  double activation_probability = 0.5;
  std::size_t subset_size = 1;
  std::size_t fairness_bound = 64;

  // Protocol extras.
  unsigned sync2_bits_per_symbol = 1;        ///< Section 3.1 byte remark.
  bool async2_banded = false;                ///< Bounded-footprint variant.
  std::size_t ksegment_k = 4;                ///< Section 5 index base.
  geom::Vec2 flock_velocity{0.0, 0.0};       ///< Section 5 flocking
                                             ///< (global units/instant,
                                             ///< sliced protocol only).

  // Model stressors (Section 5 discussion), forwarded to the engine.
  double observation_quantum = 0.0;  ///< Sensor grid; 0 = ideal.
  sim::Time observation_delay = 0;   ///< Stale observations; 0 = atomic.
  double visibility_radius = 0.0;    ///< Limited visibility; 0 = unlimited.

  // Fuzz/replay hooks (not owned; must outlive the network).
  sim::ScheduleLog* record_schedule = nullptr;  ///< Capture activations.
  const sim::ScheduleLog* replay_schedule = nullptr;  ///< Play back a
                                                      ///< recorded schedule
                                                      ///< instead of
                                                      ///< sampling one.
};

/// A delivered message, in simulator indices.
struct Delivery {
  sim::RobotIndex from = 0;
  sim::RobotIndex to = 0;      ///< Equals `from` for broadcasts.
  bool broadcast = false;      ///< One-to-all message.
  std::vector<std::uint8_t> payload;
};

class ChatNetwork {
 public:
  /// Creates the swarm at the given global positions (pairwise distinct).
  ChatNetwork(std::vector<geom::Vec2> positions, ChatNetworkOptions options);

  /// Queues `payload` from robot `from` to robot `to` over the motion
  /// channel.
  void send(sim::RobotIndex from, sim::RobotIndex to,
            std::span<const std::uint8_t> payload);

  /// Queues `payload` from robot `from` to *every* robot: signaled once on
  /// the sender's own diameter, decoded by all (Section 5 one-to-all).
  void broadcast(sim::RobotIndex from,
                 std::span<const std::uint8_t> payload);

  /// Advances one instant and collects deliveries.
  void step();
  /// Advances `instants` instants.
  void run(sim::Time instants);
  /// Runs until every queued message has been fully transmitted (and hence
  /// delivered — protocols only complete a bit once its receipt is
  /// guaranteed), or `max_instants` elapse. Returns true on quiescence.
  bool run_until_quiescent(sim::Time max_instants);

  /// True when no robot has bits left to send. When a fault interceptor is
  /// attached (see `attach_step_interceptor`), robots it reports crashed
  /// are exempt: their outboxes can never drain, and waiting on them would
  /// make every faulted run a timeout.
  [[nodiscard]] bool quiescent() const;

  /// Messages delivered to robot `i` so far (in decode order).
  [[nodiscard]] const std::vector<Delivery>& received(
      sim::RobotIndex i) const {
    return received_.at(i);
  }
  /// Drains robot `i`'s deliveries (for layered services such as
  /// MulticastService that post-process them).
  [[nodiscard]] std::vector<Delivery> take_received(sim::RobotIndex i) {
    std::vector<Delivery> out;
    out.swap(received_.at(i));
    return out;
  }
  /// Messages robot `i` decoded that were addressed to someone else.
  [[nodiscard]] const std::vector<Delivery>& overheard(
      sim::RobotIndex i) const {
    return overheard_.at(i);
  }

  [[nodiscard]] std::size_t robot_count() const {
    return engine_->robot_count();
  }
  [[nodiscard]] const proto::ChatStats& stats(sim::RobotIndex i) const {
    return chat_.at(i)->stats();
  }
  [[nodiscard]] sim::Engine& engine() { return *engine_; }
  [[nodiscard]] const sim::Engine& engine() const { return *engine_; }
  [[nodiscard]] ProtocolKind protocol_kind() const { return kind_; }

  /// Routes telemetry from the engine *and* every protocol robot into
  /// `sink` (not owned; null detaches): the run becomes a queryable
  /// timeline of Activation/Move/PhaseEnter/Bit*/Frame*/Ack* events.
  void attach_event_sink(obs::EventSink* sink);

  /// Registers engine-level metrics (step wall time) into `registry` (not
  /// owned; null detaches). Event-derived metrics come from attaching an
  /// obs::MetricsSink via `attach_event_sink`.
  void attach_metrics(obs::MetricsRegistry* registry);

  /// Attaches a coverage map (not owned; null detaches): the engine records
  /// sched-domain activation-class 2-grams, every protocol robot records
  /// proto-domain phase-transition edges (prefixed with the protocol name)
  /// and frame-domain parser outcomes, and the network itself records one
  /// proto-domain `<protocol>.enter -> naming.<mode>` edge pinning which
  /// naming construction this configuration exercised. See obs/cov.hpp.
  void attach_coverage(obs::cov::CovMap* map);

  /// Attaches a cycle/allocation profiler (not owned; null detaches):
  /// forwards to `sim::Engine::set_profiler` for the engine phases and adds
  /// the network's own `net.collect` phase around delivery collection. See
  /// obs/prof.hpp for the cost model.
  void attach_profiler(obs::prof::Profiler* profiler);

  /// Summarizes the run so far: headline shape numbers (instants/bit,
  /// distance/bit, idle moves, min separation) plus per-robot counters.
  /// `wall_seconds` is left 0 — timing belongs to the caller.
  [[nodiscard]] obs::RunReport report() const;
  /// The protocol robot driving simulator robot `i` (for inspection).
  [[nodiscard]] const proto::ChatRobot& chat_robot(sim::RobotIndex i) const {
    return *chat_.at(i);
  }

  /// Arms a one-shot decode fault on robot `i`: `burst` consecutive decoded
  /// signals starting at its `nth_bit`-th (0-based) are misread. Throws if
  /// a fault is already armed on `i`. Fuzz/fault-harness hook — see
  /// proto::ChatRobot::inject_decode_fault.
  void inject_decode_fault(sim::RobotIndex i, std::uint64_t nth_bit,
                           std::uint64_t burst = 1) {
    chat_.at(i)->inject_decode_fault(nth_bit, burst);
  }

  /// Schedules a transient state corruption: after the moves of instant
  /// `at`, robot `i`'s state machine `kind` is overwritten with arbitrary
  /// values drawn purely from (network seed, i, at, kind) — replaying the
  /// same configuration replays the same damage bit-for-bit. Also arms
  /// stabilization on every robot so the drivers' recovery audits run.
  /// Emits a FaultInjected "corrupt_<target>" event and records a
  /// fault.plan -> fault.corrupt_<target> coverage edge when applied.
  /// Fuzz/fault-harness hook — see fault::arm_corruptions.
  void schedule_corruption(sim::RobotIndex i, sim::Time at,
                           proto::CorruptKind kind);

  /// Corruptions whose instant has passed (drivers were scrambled).
  [[nodiscard]] std::size_t corruptions_applied() const noexcept {
    return corrupt_next_;
  }
  /// Instant of the first applied corruption, if any was applied yet.
  [[nodiscard]] std::optional<sim::Time> first_corruption_instant()
      const noexcept {
    return first_corrupt_t_;
  }

  /// Attaches a fault-injection interceptor to the engine (not owned; null
  /// detaches). Beyond forwarding to `sim::Engine::set_step_interceptor`,
  /// the network also consults it in `quiescent()` so crash-stopped robots
  /// do not block termination.
  void attach_step_interceptor(sim::StepInterceptor* interceptor) {
    interceptor_ = interceptor;
    engine_->set_step_interceptor(interceptor);
  }

 private:
  void collect();

  /// One scheduled (not yet applied) transient corruption.
  struct ScheduledCorruption {
    sim::Time at = 0;
    sim::RobotIndex robot = 0;
    proto::CorruptKind kind = proto::CorruptKind::phase;
  };
  /// Applies due corruptions and updates the convergence/silence trackers
  /// for the instant just executed. Only called when corruptions are
  /// scheduled, so fault-free runs pay nothing.
  void track_stabilization();

  ChatNetworkOptions options_;
  ProtocolKind kind_ = ProtocolKind::automatic;
  std::unique_ptr<sim::Engine> engine_;
  sim::StepInterceptor* interceptor_ = nullptr;  ///< Not owned.
  obs::prof::Profiler* prof_ = nullptr;          ///< Not owned.
  obs::prof::PhaseId ph_collect_ = 0;
  obs::cov::CovMap* cov_ = nullptr;              ///< Not owned.
  std::vector<proto::ChatRobot*> chat_;  ///< Non-owning; engine owns.
  /// slot_to_engine_[i][slot] = simulator index of the robot that robot i's
  /// protocol calls `slot`.
  std::vector<std::vector<sim::RobotIndex>> slot_to_engine_;
  std::vector<std::vector<Delivery>> received_;
  std::vector<std::vector<Delivery>> overheard_;

  // Stabilization bookkeeping (inert unless schedule_corruption was
  // called). Tracks the two recovery metrics: convergence time (instants
  // from the first corruption to the next correct delivery) and silence
  // (trailing movement-signal-free rounds).
  obs::EventSink* sink_ = nullptr;        ///< Not owned; mirror of attach.
  std::vector<ScheduledCorruption> corrupts_;  ///< Sorted by instant.
  std::size_t corrupt_next_ = 0;          ///< First not-yet-applied index.
  std::optional<sim::Time> first_corrupt_t_;
  std::optional<sim::Time> converged_t_;  ///< First delivery after that.
  std::optional<sim::Time> last_signal_t_;
  std::uint64_t bits_seen_ = 0;
  std::uint64_t deliveries_at_corrupt_ = 0;
};

}  // namespace stig::core
