#include "core/chat_network.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "par/seed.hpp"
#include "proto/async2.hpp"
#include "proto/asyncn.hpp"
#include "proto/ksegment.hpp"
#include "proto/sync2.hpp"
#include "proto/sync_sliced.hpp"
#include "sim/rng.hpp"

namespace stig::core {
namespace {

proto::NamingMode naming_for(const Capabilities& caps) {
  if (caps.visible_ids && caps.sense_of_direction) {
    return proto::NamingMode::by_ids;
  }
  if (caps.sense_of_direction) return proto::NamingMode::lexicographic;
  return proto::NamingMode::relative;
}

ProtocolKind resolve_protocol(const ChatNetworkOptions& opt, std::size_t n) {
  if (opt.protocol != ProtocolKind::automatic) return opt.protocol;
  if (opt.synchrony == Synchrony::synchronous) {
    return n == 2 ? ProtocolKind::sync2 : ProtocolKind::sliced;
  }
  return n == 2 ? ProtocolKind::async2 : ProtocolKind::asyncn;
}

std::unique_ptr<sim::Scheduler> make_base_scheduler(
    const ChatNetworkOptions& opt) {
  if (opt.replay_schedule != nullptr) {
    return std::make_unique<sim::ReplayScheduler>(opt.replay_schedule);
  }
  if (opt.synchrony == Synchrony::synchronous) {
    return std::make_unique<sim::SynchronousScheduler>();
  }
  switch (opt.scheduler) {
    case SchedulerKind::bernoulli:
      return std::make_unique<sim::BernoulliScheduler>(
          opt.activation_probability, opt.seed ^ 0xabcdef, opt.fairness_bound);
    case SchedulerKind::centralized:
      return std::make_unique<sim::CentralizedScheduler>();
    case SchedulerKind::ksubset:
      return std::make_unique<sim::KSubsetScheduler>(
          opt.subset_size, opt.seed ^ 0xabcdef, opt.fairness_bound);
    case SchedulerKind::adversarial:
      return std::make_unique<sim::AdversarialScheduler>(opt.fairness_bound);
  }
  throw std::logic_error("unknown scheduler kind");
}

std::unique_ptr<sim::Scheduler> make_scheduler(
    const ChatNetworkOptions& opt) {
  std::unique_ptr<sim::Scheduler> base = make_base_scheduler(opt);
  if (opt.record_schedule != nullptr) {
    return std::make_unique<sim::RecordingScheduler>(std::move(base),
                                                     opt.record_schedule);
  }
  return base;
}

}  // namespace

const char* protocol_kind_name(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::automatic: return "auto";
    case ProtocolKind::sync2: return "sync2";
    case ProtocolKind::sliced: return "sliced";
    case ProtocolKind::ksegment: return "ksegment";
    case ProtocolKind::async2: return "async2";
    case ProtocolKind::asyncn: return "asyncn";
  }
  return "unknown";
}

const char* scheduler_kind_name(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::bernoulli: return "bernoulli";
    case SchedulerKind::centralized: return "centralized";
    case SchedulerKind::ksubset: return "ksubset";
    case SchedulerKind::adversarial: return "adversarial";
  }
  return "unknown";
}

ChatNetwork::ChatNetwork(std::vector<geom::Vec2> positions,
                         ChatNetworkOptions options)
    : options_(options) {
  const std::size_t n = positions.size();
  if (n < 2) {
    throw std::invalid_argument("ChatNetwork needs at least two robots");
  }
  if (options_.visibility_radius > 0.0) {
    // The paper's protocols assume every movement is observable by every
    // robot; under limited visibility (Section 5 open problem) we require
    // at least mutual visibility of the initial configuration.
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        if (geom::dist(positions[i], positions[j]) >
            options_.visibility_radius) {
          throw std::invalid_argument(
              "robots must be mutually visible at t0");
        }
      }
    }
  }
  kind_ = resolve_protocol(options_, n);
  const bool synchronous = options_.synchrony == Synchrony::synchronous;
  if ((kind_ == ProtocolKind::sync2 || kind_ == ProtocolKind::async2) &&
      n != 2) {
    throw std::invalid_argument("2-robot protocol with n != 2");
  }
  if ((kind_ == ProtocolKind::sync2 || kind_ == ProtocolKind::sliced ||
       kind_ == ProtocolKind::ksegment) != synchronous) {
    throw std::invalid_argument("protocol/synchrony mismatch");
  }

  // Robot frames: randomized within the declared capabilities.
  sim::Rng rng(options_.seed);
  std::vector<sim::RobotSpec> specs;
  specs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    sim::RobotSpec s;
    s.position = positions[i];
    s.sigma = options_.sigma;
    s.frame_unit = options_.randomize_frames ? rng.uniform(0.5, 2.0) : 1.0;
    s.frame_rotation =
        options_.caps.sense_of_direction || !options_.randomize_frames
            ? 0.0
            : rng.uniform(0.0, geom::kTwoPi);
    s.frame_mirrored = options_.mirrored_frames;  // Chirality: all equal.
    if (options_.caps.visible_ids) {
      // Arbitrary unique, deliberately not 0..n-1, so nothing can conflate
      // ids with simulator indices.
      s.id = static_cast<sim::VisibleId>(1000 + 7 * i);
    }
    specs.push_back(s);
  }

  const proto::NamingMode naming = naming_for(options_.caps);
  std::vector<std::unique_ptr<sim::Robot>> programs;
  programs.reserve(n);
  chat_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double sigma_local = options_.sigma / specs[i].frame_unit;
    std::unique_ptr<proto::ChatRobot> robot;
    switch (kind_) {
      case ProtocolKind::sync2: {
        proto::Sync2Options o;
        o.sigma_local = sigma_local;
        o.bits_per_symbol = options_.sync2_bits_per_symbol;
        robot = std::make_unique<proto::Sync2Robot>(o);
        break;
      }
      case ProtocolKind::sliced: {
        proto::SyncSlicedOptions o;
        o.naming = naming;
        o.sigma_local = sigma_local;
        o.flock_velocity =
            sim::Frame(geom::Vec2{0, 0}, specs[i].frame_rotation,
                       specs[i].frame_unit, specs[i].frame_mirrored)
                    .to_local(options_.flock_velocity);
        robot = std::make_unique<proto::SyncSlicedRobot>(o);
        break;
      }
      case ProtocolKind::ksegment: {
        proto::KSegmentOptions o;
        o.naming = naming;
        o.k = options_.ksegment_k;
        o.sigma_local = sigma_local;
        robot = std::make_unique<proto::KSegmentRobot>(o);
        break;
      }
      case ProtocolKind::async2: {
        proto::Async2Options o;
        o.sigma_local = sigma_local;
        o.ack_changes = 2 + 2 * options_.observation_delay;
        o.bound = options_.async2_banded ? proto::BoundKind::banded
                                         : proto::BoundKind::unbounded;
        robot = std::make_unique<proto::Async2Robot>(o);
        break;
      }
      case ProtocolKind::asyncn: {
        proto::AsyncNOptions o;
        o.naming = naming;
        o.sigma_local = sigma_local;
        o.ack_changes = 2 + 2 * options_.observation_delay;
        robot = std::make_unique<proto::AsyncNRobot>(o);
        break;
      }
      case ProtocolKind::automatic:
        throw std::logic_error("unresolved protocol kind");
    }
    chat_.push_back(robot.get());
    programs.push_back(std::move(robot));
  }

  sim::EngineOptions eopt;
  eopt.record_positions = options_.record_positions;
  eopt.observation_quantum = options_.observation_quantum;
  eopt.observation_delay = options_.observation_delay;
  eopt.visibility_radius = options_.visibility_radius;
  engine_ = std::make_unique<sim::Engine>(std::move(specs),
                                          std::move(programs),
                                          make_scheduler(options_), eopt);

  // slot <-> simulator-index translation, per robot.
  slot_to_engine_.assign(n, std::vector<sim::RobotIndex>(n));
  for (std::size_t i = 0; i < n; ++i) {
    const std::vector<sim::RobotIndex> order =
        engine_->initial_observation_order(i);
    for (std::size_t t0_index = 0; t0_index < n; ++t0_index) {
      const std::size_t slot = chat_[i]->slot_of_t0_index(t0_index);
      slot_to_engine_[i][slot] = order[t0_index];
    }
  }
  received_.assign(n, {});
  overheard_.assign(n, {});
}

void ChatNetwork::attach_event_sink(obs::EventSink* sink) {
  sink_ = sink;
  engine_->set_event_sink(sink);
  for (std::size_t i = 0; i < chat_.size(); ++i) {
    chat_[i]->set_telemetry(sink, i, &slot_to_engine_[i]);
  }
}

void ChatNetwork::attach_metrics(obs::MetricsRegistry* registry) {
  engine_->set_metrics(registry);
}

void ChatNetwork::attach_coverage(obs::cov::CovMap* map) {
  cov_ = map;
  engine_->set_coverage(map);
  const char* proto_name = protocol_kind_name(kind_);
  for (proto::ChatRobot* robot : chat_) {
    robot->set_coverage(map, proto_name);
  }
  if (cov_ == nullptr) return;
  // One configuration edge per run: which naming construction this
  // capability set resolved to. Baselines lose it when a protocol/naming
  // combination drops out of the corpus.
  const char* naming = "none";
  switch (naming_for(options_.caps)) {
    case proto::NamingMode::by_ids: naming = "by_ids"; break;
    case proto::NamingMode::lexicographic: naming = "lexicographic"; break;
    case proto::NamingMode::relative: naming = "relative"; break;
  }
  cov_->hit(obs::cov::Domain::proto, cov_->state(proto_name, "enter"),
            cov_->state("naming", naming));
}

void ChatNetwork::attach_profiler(obs::prof::Profiler* profiler) {
  prof_ = profiler;
  engine_->set_profiler(profiler);
  if (prof_ != nullptr) ph_collect_ = prof_->phase("net.collect");
}

obs::RunReport ChatNetwork::report() const {
  obs::RunReport r;
  r.protocol = protocol_kind_name(kind_);
  r.schedule = options_.synchrony == Synchrony::synchronous
                   ? "synchronous"
                   : scheduler_kind_name(options_.scheduler);
  r.seed = options_.seed;
  r.robots = chat_.size();
  r.instants = engine_->now();
  r.quiescent = quiescent();
  r.min_separation = engine_->trace().min_separation();
  for (const proto::ChatRobot* robot : chat_) {
    if (robot->decode_fault_pending()) ++r.unfired_decode_faults;
  }
  r.corruptions_applied = corrupt_next_;
  if (first_corrupt_t_ && converged_t_) {
    r.reconverged = true;
    r.convergence_instants = *converged_t_ - *first_corrupt_t_;
  }
  if (!corrupts_.empty()) {
    // Silence: trailing movement-signal-free rounds. After quiescence this
    // is how long the swarm has been silent — the recovery-efficiency
    // measure of the self-stabilization companions.
    const sim::Time end = engine_->now();
    r.silence_rounds = last_signal_t_ ? end - 1 - *last_signal_t_ : end;
  }
  if (cov_ != nullptr) {
    r.cov_edges = cov_->distinct_edges();
    r.cov_hits = cov_->total_hits();
  }
  r.per_robot.resize(chat_.size());
  for (std::size_t i = 0; i < chat_.size(); ++i) {
    const sim::MotionStats& m = engine_->trace().stats(i);
    const proto::ChatStats& c = chat_[i]->stats();
    obs::RobotReport& out = r.per_robot[i];
    out.activations = m.activations;
    out.moves = m.moves;
    out.distance = m.distance;
    out.idle_activations = c.idle_activations;
    out.idle_moves = c.idle_moves;
    out.bits_sent = c.bits_sent;
    out.bits_decoded = c.bits_decoded;
    out.messages_sent = c.messages_sent;
    out.messages_received = c.messages_received;
    out.messages_overheard = c.messages_overheard;
    r.bits_sent += c.bits_sent;
    r.idle_moves += c.idle_moves;
    r.total_distance += m.distance;
    r.messages_delivered += received_[i].size();
  }
  if (r.bits_sent > 0) {
    r.instants_per_bit = static_cast<double>(r.instants) /
                         static_cast<double>(r.bits_sent);
    r.distance_per_bit = r.total_distance /
                         static_cast<double>(r.bits_sent);
  }
  return r;
}

void ChatNetwork::send(sim::RobotIndex from, sim::RobotIndex to,
                       std::span<const std::uint8_t> payload) {
  if (from == to) throw std::invalid_argument("from == to");
  const std::vector<sim::RobotIndex>& slots = slot_to_engine_.at(from);
  const auto it = std::find(slots.begin(), slots.end(), to);
  if (it == slots.end()) {
    throw std::invalid_argument("send: unknown destination robot");
  }
  const auto slot = static_cast<std::size_t>(it - slots.begin());
  chat_.at(from)->send_message(slot, payload);
}

void ChatNetwork::broadcast(sim::RobotIndex from,
                            std::span<const std::uint8_t> payload) {
  chat_.at(from)->send_broadcast(payload);
}

void ChatNetwork::collect() {
  for (std::size_t i = 0; i < chat_.size(); ++i) {
    const std::vector<sim::RobotIndex>& slots = slot_to_engine_[i];
    for (auto& m : chat_[i]->take_inbox()) {
      received_[i].push_back(Delivery{slots[m.sender], slots[m.addressee],
                                      m.broadcast, std::move(m.payload)});
    }
    for (auto& m : chat_[i]->take_overheard()) {
      overheard_[i].push_back(Delivery{slots[m.sender], slots[m.addressee],
                                       m.broadcast, std::move(m.payload)});
    }
  }
}

void ChatNetwork::step() {
  engine_->step();
  {
    obs::prof::Scope s(prof_, ph_collect_);
    collect();
  }
  if (!corrupts_.empty()) track_stabilization();
}

void ChatNetwork::schedule_corruption(sim::RobotIndex i, sim::Time at,
                                      proto::CorruptKind kind) {
  if (i >= chat_.size()) {
    throw std::invalid_argument("schedule_corruption: unknown robot");
  }
  corrupts_.push_back(ScheduledCorruption{at, i, kind});
  std::stable_sort(corrupts_.begin(), corrupts_.end(),
                   [](const ScheduledCorruption& a,
                      const ScheduledCorruption& b) { return a.at < b.at; });
  corrupt_next_ = 0;
  // Every robot runs its recovery audits: the corrupted one to repair
  // itself, the others because a corrupted *peer* is indistinguishable
  // from own damage at the stream level.
  for (proto::ChatRobot* robot : chat_) robot->arm_stabilization();
}

void ChatNetwork::track_stabilization() {
  const sim::Time t = engine_->now() - 1;  // The instant just executed.
  while (corrupt_next_ < corrupts_.size() &&
         corrupts_[corrupt_next_].at <= t) {
    const ScheduledCorruption& c = corrupts_[corrupt_next_++];
    // Garbage is a pure function of (seed, robot, at, kind): replays of
    // the same configuration scramble the same bytes.
    sim::Rng grng(par::mix_seed(options_.seed ^ 0x5AB17C0DEULL ^
                                (static_cast<std::uint64_t>(c.robot) << 40) ^
                                (static_cast<std::uint64_t>(c.kind) << 56) ^
                                c.at));
    const std::uint64_t garbage = grng.uniform_int(
        0, std::numeric_limits<std::uint64_t>::max());
    chat_[c.robot]->corrupt_state(c.kind, garbage);
    if (!first_corrupt_t_) {
      first_corrupt_t_ = c.at;
      std::uint64_t delivered = 0;
      for (const auto& v : received_) delivered += v.size();
      deliveries_at_corrupt_ = delivered;
    }
    static constexpr const char* kLabels[] = {
        "corrupt_phase", "corrupt_cursor", "corrupt_parser",
        "corrupt_naming"};
    const char* label = kLabels[static_cast<std::size_t>(c.kind)];
    if (cov_ != nullptr) {
      cov_->hit(obs::cov::Domain::fault, cov_->state("fault", "plan"),
                cov_->state("fault", label));
    }
    if (sink_ != nullptr) {
      obs::Event e;
      e.type = obs::EventType::FaultInjected;
      e.t = t;
      e.robot = static_cast<std::int64_t>(c.robot);
      e.value = static_cast<double>(garbage % 1000003ULL);
      e.label = label;
      sink_->on_event(e);
    }
  }

  // Convergence/silence trackers.
  std::uint64_t bits = 0;
  for (const proto::ChatRobot* robot : chat_) bits += robot->stats().bits_sent;
  if (bits > bits_seen_) {
    bits_seen_ = bits;
    last_signal_t_ = t;
  }
  if (first_corrupt_t_ && !converged_t_) {
    std::uint64_t delivered = 0;
    for (const auto& v : received_) delivered += v.size();
    if (delivered > deliveries_at_corrupt_) converged_t_ = t;
  }
}

void ChatNetwork::run(sim::Time instants) {
  for (sim::Time k = 0; k < instants; ++k) step();
}

bool ChatNetwork::quiescent() const {
  const sim::Time now = engine_->now();
  for (std::size_t i = 0; i < chat_.size(); ++i) {
    if (interceptor_ != nullptr && interceptor_->crashed(i, now)) continue;
    if (!chat_[i]->send_queue_empty()) return false;
  }
  return true;
}

bool ChatNetwork::run_until_quiescent(sim::Time max_instants) {
  for (sim::Time k = 0; k < max_instants && !quiescent(); ++k) step();
  return quiescent();
}

}  // namespace stig::core
