// Capability model: which assumptions the swarm satisfies.
//
// The paper's protocols form a lattice by capability: identified vs
// anonymous, with or without sense of direction, synchronous vs
// asynchronous — chirality (common handedness) is assumed throughout. The
// core API picks the right protocol from a Capabilities record instead of
// making the user choose a class.
#pragma once

namespace stig::core {

/// Timing model of the swarm.
enum class Synchrony : unsigned char {
  synchronous,   ///< Every robot active at every instant (Section 3).
  asynchronous,  ///< Fair scheduler, at least one active (Section 4).
};

/// What the robots can perceive/agree on.
struct Capabilities {
  /// Robots carry observable identifiers (Section 3.2 routing).
  bool visible_ids = false;
  /// Robots agree on the orientation of the y axis (and with chirality, of
  /// the x axis too).
  bool sense_of_direction = false;
  /// Common handedness. The paper assumes it throughout; the simulator can
  /// model its absence, but no protocol here works without it.
  bool chirality = true;
};

}  // namespace stig::core
