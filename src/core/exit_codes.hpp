// CLI exit codes — the single source of truth for stigsim's outcomes.
//
// The codes grew across PRs (0–3 in PR 1, 4 in PR 2, 5 in PR 3) and were
// documented in three places that drifted independently: the stigsim
// source, its --help text, and the README/docs tables. This header is now
// the only place the table lives: stigsim takes its constants *and* the
// rendered --help block from here, the README table is checked against
// these entries by tests/test_cli_exit_codes.cpp, and a new code cannot be
// added without the test forcing the docs to follow.
#pragma once

#include <array>
#include <string>

namespace stig::cli {

// stigsim outcomes (see docs/OBSERVABILITY.md "CLI exit codes").
inline constexpr int kExitDelivered = 0;
inline constexpr int kExitNoDelivery = 1;
inline constexpr int kExitUsage = 2;
inline constexpr int kExitRuntime = 3;
inline constexpr int kExitWatchdog = 4;
inline constexpr int kExitReproduced = 5;

/// One row of the documented exit-code table.
struct ExitCodeEntry {
  int code;
  const char* summary;
};

/// The canonical stigsim table, in code order 0..5. README's "Exit codes"
/// table and `stigsim --help` must both render exactly these summaries.
inline constexpr std::array<ExitCodeEntry, 6> kStigsimExitCodes{{
    {kExitDelivered, "message(s) delivered (or --replay came up clean)"},
    {kExitNoDelivery, "run finished with no delivery (timeout)"},
    {kExitUsage, "usage error (bad flag or value)"},
    {kExitRuntime, "runtime or I/O error (or --replay diverged)"},
    {kExitWatchdog, "watchdog violation in report mode"},
    {kExitReproduced, "--replay reproduced the recorded failure"},
}};

/// Renders the table as the block `stigsim --help` prints.
[[nodiscard]] inline std::string stigsim_exit_code_help() {
  std::string out = "exit codes:\n";
  for (const ExitCodeEntry& e : kStigsimExitCodes) {
    out += "  ";
    out += std::to_string(e.code);
    out += "  ";
    out += e.summary;
    out += "\n";
  }
  return out;
}

}  // namespace stig::cli
