// MulticastService — efficient one-to-many over the broadcast lane.
//
// The paper notes the protocols "can be easily adapted to implement
// efficiently one-to-many" communication. Sending the payload once per
// recipient costs k frames; this service instead signals the payload *once*
// on the sender's broadcast lane, prefixed by a recipient bitmap, and lets
// every robot filter locally:
//
//   multicast frame := magic byte | ceil(n/8)-byte recipient bitmap | payload
//
// Cost: one frame plus n bits of bitmap — beats k unicasts whenever
// k * frame_bits > frame_bits + n + 16, i.e. for any k >= 2 at realistic
// sizes (benchmarked in A1).
//
// The service drains the underlying ChatNetwork's deliveries, so route all
// receiving through `poll`/`received` once a network uses multicast.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/chat_network.hpp"

namespace stig::core {

class MulticastService {
 public:
  /// The network must outlive the service.
  explicit MulticastService(ChatNetwork& net)
      : net_(net),
        plain_(net.robot_count()),
        group_(net.robot_count()) {}

  /// Magic first byte distinguishing multicast envelopes from plain
  /// broadcasts on the same lane. Applications using this service should
  /// send plain broadcasts through it too (`broadcast`), which stuffs the
  /// complementary tag.
  static constexpr std::uint8_t kMulticastTag = 0xC4;
  static constexpr std::uint8_t kPlainTag = 0x00;

  /// Sends `payload` to every robot in `recipients` with a single
  /// broadcast-lane transmission.
  void multicast(sim::RobotIndex from,
                 std::span<const sim::RobotIndex> recipients,
                 std::span<const std::uint8_t> payload) {
    const std::size_t n = net_.robot_count();
    std::vector<std::uint8_t> wire;
    wire.reserve(2 + n / 8 + payload.size());
    wire.push_back(kMulticastTag);
    std::vector<std::uint8_t> bitmap((n + 7) / 8, 0);
    for (sim::RobotIndex r : recipients) {
      bitmap.at(r / 8) |= static_cast<std::uint8_t>(1U << (r % 8));
    }
    wire.insert(wire.end(), bitmap.begin(), bitmap.end());
    wire.insert(wire.end(), payload.begin(), payload.end());
    net_.broadcast(from, wire);
  }

  /// Sends a plain one-to-all broadcast through the service's envelope.
  void broadcast(sim::RobotIndex from,
                 std::span<const std::uint8_t> payload) {
    std::vector<std::uint8_t> wire;
    wire.reserve(1 + payload.size());
    wire.push_back(kPlainTag);
    wire.insert(wire.end(), payload.begin(), payload.end());
    net_.broadcast(from, wire);
  }

  /// Unicast passes straight through (no envelope needed).
  void send(sim::RobotIndex from, sim::RobotIndex to,
            std::span<const std::uint8_t> payload) {
    net_.send(from, to, payload);
  }

  /// Drains the network's deliveries for every robot and files them. Call
  /// after driving the network.
  void poll() {
    const std::size_t n = net_.robot_count();
    for (sim::RobotIndex i = 0; i < n; ++i) {
      for (Delivery& d : net_.take_received(i)) {
        if (!d.broadcast) {
          plain_[i].push_back(std::move(d));
          continue;
        }
        if (d.payload.empty()) continue;  // Malformed envelope; drop.
        const std::uint8_t tag = d.payload.front();
        if (tag == kPlainTag) {
          d.payload.erase(d.payload.begin());
          plain_[i].push_back(std::move(d));
        } else if (tag == kMulticastTag) {
          const std::size_t bitmap_len = (n + 7) / 8;
          if (d.payload.size() < 1 + bitmap_len) continue;  // Malformed.
          const bool for_me =
              (d.payload[1 + i / 8] >> (i % 8)) & 1U;
          if (!for_me) continue;  // Group traffic for others: discard.
          d.payload.erase(d.payload.begin(),
                          d.payload.begin() +
                              static_cast<std::ptrdiff_t>(1 + bitmap_len));
          group_[i].push_back(std::move(d));
        }
        // Unknown tags are dropped (future envelope versions).
      }
    }
  }

  /// Unicasts and plain broadcasts delivered to robot `i`.
  [[nodiscard]] const std::vector<Delivery>& received(
      sim::RobotIndex i) const {
    return plain_.at(i);
  }
  /// Multicasts addressed to robot `i` (payload unwrapped).
  [[nodiscard]] const std::vector<Delivery>& group_received(
      sim::RobotIndex i) const {
    return group_.at(i);
  }

 private:
  ChatNetwork& net_;
  std::vector<std::vector<Delivery>> plain_;
  std::vector<std::vector<Delivery>> group_;
};

}  // namespace stig::core
