// Failure shrinking — reduce a failing config to a minimal reproducer.
//
// Greedy delta-debugging in a fixed order: payload bytes, then the
// fault-masking dimensions (drop the masked layer whole, else individual
// faults, fault magnitudes, and the group size), then robots, then the
// instant budget, then the scheduler's activation probability. A candidate
// is accepted only when run_case reports the *same* FailureKind — a shrink
// that morphs one failure into another is a different bug and is rejected.
// The budget stage is skipped for timeouts (any budget cut trivially
// "reproduces" a timeout); the robot stage is skipped while a fault plan
// survives (plan robots are physical lane*n+logical indices, so changing n
// would re-target every fault).
#pragma once

#include <cstddef>

#include "fuzz/fuzz_config.hpp"
#include "fuzz/fuzzer.hpp"

namespace stig::fuzz {

struct ShrinkResult {
  FuzzConfig config;     ///< The minimal failing config found.
  CaseResult result;     ///< run_case(config) — same kind as the original.
  std::size_t attempts = 0;  ///< Candidate runs spent (<= max_attempts).
};

/// Shrinks `failing` (whose run_case result was `original`). Every
/// intermediate candidate is re-run, so the returned config's failure is
/// verified, not inferred.
[[nodiscard]] ShrinkResult shrink(const FuzzConfig& failing,
                                  const CaseResult& original,
                                  std::size_t max_attempts = 200);

}  // namespace stig::fuzz
