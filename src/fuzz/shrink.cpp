#include "fuzz/shrink.hpp"

#include <utility>

namespace stig::fuzz {

ShrinkResult shrink(const FuzzConfig& failing, const CaseResult& original,
                    std::size_t max_attempts) {
  ShrinkResult best{failing, original, 0};
  const FailureKind kind = original.kind;

  // Accepts `cand` as the new best iff it fails with the original kind.
  const auto try_candidate = [&](FuzzConfig cand) -> bool {
    if (best.attempts >= max_attempts) return false;
    ++best.attempts;
    CaseResult r = run_case(cand);
    if (r.kind != kind) return false;
    best.config = std::move(cand);
    best.result = std::move(r);
    return true;
  };

  // Stage 1: payload bytes. Halve from the back, then drop single bytes.
  while (!best.config.payload.empty()) {
    FuzzConfig cand = best.config;
    cand.payload.resize(cand.payload.size() / 2);
    if (!try_candidate(std::move(cand))) break;
  }
  bool progress = true;
  while (progress && !best.config.payload.empty()) {
    progress = false;
    for (std::size_t i = best.config.payload.size(); i-- > 0;) {
      FuzzConfig cand = best.config;
      cand.payload.erase(cand.payload.begin() +
                         static_cast<std::ptrdiff_t>(i));
      if (try_candidate(std::move(cand))) {
        progress = true;
        break;
      }
    }
  }

  // Stage 1b: fault-masking dimensions. First try dropping the whole
  // masked layer (the failure may not need redundancy at all), then remove
  // individual faults, then shrink fault magnitudes, then the group size.
  // Runs before the robot stage because plan robots are *physical* indices
  // (lane * n + logical) — changing n would silently re-target every fault.
  if (best.config.group_size > 1 || !best.config.fault_plan.empty()) {
    {
      FuzzConfig cand = best.config;
      cand.group_size = 1;
      cand.fault_plan = {};
      (void)try_candidate(std::move(cand));
    }
    const auto drop_each = [&](auto member) {
      bool again = true;
      while (again) {
        again = false;
        auto& faults = best.config.fault_plan.*member;
        for (std::size_t i = faults.size(); i-- > 0;) {
          FuzzConfig cand = best.config;
          auto& list = cand.fault_plan.*member;
          list.erase(list.begin() + static_cast<std::ptrdiff_t>(i));
          if (try_candidate(std::move(cand))) {
            again = true;
            break;
          }
        }
      }
    };
    drop_each(&fault::FaultPlan::crashes);
    drop_each(&fault::FaultPlan::stalls);
    drop_each(&fault::FaultPlan::jitters);
    drop_each(&fault::FaultPlan::bursts);
    drop_each(&fault::FaultPlan::corrupts);
    // Corruption instants shrink toward 1 — the earliest the network can
    // apply one — which tends to minimize the pre-corruption prefix a
    // reproducer has to wade through.
    bool earlier = true;
    while (earlier) {
      earlier = false;
      for (std::size_t i = 0; i < best.config.fault_plan.corrupts.size();
           ++i) {
        if (best.config.fault_plan.corrupts[i].at <= 1) continue;
        FuzzConfig cand = best.config;
        cand.fault_plan.corrupts[i].at /= 2;
        if (cand.fault_plan.corrupts[i].at == 0) {
          cand.fault_plan.corrupts[i].at = 1;
        }
        if (try_candidate(std::move(cand))) earlier = true;
      }
    }
    bool magnitudes = true;
    while (magnitudes) {
      magnitudes = false;
      for (std::size_t i = 0; i < best.config.fault_plan.stalls.size();
           ++i) {
        if (best.config.fault_plan.stalls[i].instants <= 1) continue;
        FuzzConfig cand = best.config;
        cand.fault_plan.stalls[i].instants /= 2;
        if (try_candidate(std::move(cand))) magnitudes = true;
      }
      for (std::size_t i = 0; i < best.config.fault_plan.bursts.size();
           ++i) {
        if (best.config.fault_plan.bursts[i].width <= 1) continue;
        FuzzConfig cand = best.config;
        cand.fault_plan.bursts[i].width /= 2;
        if (try_candidate(std::move(cand))) magnitudes = true;
      }
    }
    if (best.config.group_size > 2) {
      // Only sound when no fault targets the dropped lane's robots.
      FuzzConfig cand = best.config;
      cand.group_size = 2;
      bool targets_high_lane = false;
      const std::size_t limit = 2 * cand.n;
      for (const auto& f : cand.fault_plan.crashes) {
        if (f.robot >= limit) targets_high_lane = true;
      }
      for (const auto& f : cand.fault_plan.stalls) {
        if (f.robot >= limit) targets_high_lane = true;
      }
      for (const auto& f : cand.fault_plan.jitters) {
        if (f.robot >= limit) targets_high_lane = true;
      }
      for (const auto& f : cand.fault_plan.bursts) {
        if (f.robot >= limit) targets_high_lane = true;
      }
      if (!targets_high_lane) (void)try_candidate(std::move(cand));
    }
  }

  // Stage 2: robots. Two is the floor (and what sync2/async2 require
  // anyway); sender 0 and receiver 1 always survive the cut. Skipped when
  // a fault plan survived stage 1b: plan robots are physical indices
  // (lane * n + logical), so a different n re-targets every fault.
  const auto with_n = [&](std::size_t n) {
    FuzzConfig cand = best.config;
    cand.n = n;
    if (cand.subset_size > n) cand.subset_size = n;
    if (cand.fault) cand.fault->robot %= n;
    return cand;
  };
  if (best.config.fault_plan.empty()) {
    if (best.config.n > 2) (void)try_candidate(with_n(2));
    while (best.config.n > 2) {
      if (!try_candidate(with_n(best.config.n - 1))) break;
    }
  }

  // Stage 3: instant budget. Halve while the failure survives. Skipped for
  // timeouts — shrinking a timeout's budget reproduces it vacuously. For
  // the other kinds this cannot over-shrink: classify() demands quiescence
  // before calling anything a payload mismatch, so a budget below the
  // run's natural length flips the kind to timeout and is rejected.
  if (kind != FailureKind::timeout) {
    while (true) {
      FuzzConfig cand = best.config;
      const sim::Time cur = instant_budget(cand);
      if (cur <= 64) break;
      cand.max_instants = cur / 2;
      if (!try_candidate(std::move(cand))) break;
    }
  }

  // Stage 4: canonicalize the Bernoulli activation probability.
  if (!is_synchronous(best.config.protocol) &&
      best.config.scheduler == core::SchedulerKind::bernoulli &&
      best.config.p != 0.5) {
    FuzzConfig cand = best.config;
    cand.p = 0.5;
    (void)try_candidate(std::move(cand));
  }
  return best;
}

}  // namespace stig::fuzz
