#include "fuzz/shrink.hpp"

#include <utility>

namespace stig::fuzz {

ShrinkResult shrink(const FuzzConfig& failing, const CaseResult& original,
                    std::size_t max_attempts) {
  ShrinkResult best{failing, original, 0};
  const FailureKind kind = original.kind;

  // Accepts `cand` as the new best iff it fails with the original kind.
  const auto try_candidate = [&](FuzzConfig cand) -> bool {
    if (best.attempts >= max_attempts) return false;
    ++best.attempts;
    CaseResult r = run_case(cand);
    if (r.kind != kind) return false;
    best.config = std::move(cand);
    best.result = std::move(r);
    return true;
  };

  // Stage 1: payload bytes. Halve from the back, then drop single bytes.
  while (!best.config.payload.empty()) {
    FuzzConfig cand = best.config;
    cand.payload.resize(cand.payload.size() / 2);
    if (!try_candidate(std::move(cand))) break;
  }
  bool progress = true;
  while (progress && !best.config.payload.empty()) {
    progress = false;
    for (std::size_t i = best.config.payload.size(); i-- > 0;) {
      FuzzConfig cand = best.config;
      cand.payload.erase(cand.payload.begin() +
                         static_cast<std::ptrdiff_t>(i));
      if (try_candidate(std::move(cand))) {
        progress = true;
        break;
      }
    }
  }

  // Stage 2: robots. Two is the floor (and what sync2/async2 require
  // anyway); sender 0 and receiver 1 always survive the cut.
  const auto with_n = [&](std::size_t n) {
    FuzzConfig cand = best.config;
    cand.n = n;
    if (cand.subset_size > n) cand.subset_size = n;
    if (cand.fault) cand.fault->robot %= n;
    return cand;
  };
  if (best.config.n > 2) (void)try_candidate(with_n(2));
  while (best.config.n > 2) {
    if (!try_candidate(with_n(best.config.n - 1))) break;
  }

  // Stage 3: instant budget. Halve while the failure survives. Skipped for
  // timeouts — shrinking a timeout's budget reproduces it vacuously. For
  // the other kinds this cannot over-shrink: classify() demands quiescence
  // before calling anything a payload mismatch, so a budget below the
  // run's natural length flips the kind to timeout and is rejected.
  if (kind != FailureKind::timeout) {
    while (true) {
      FuzzConfig cand = best.config;
      const sim::Time cur = instant_budget(cand);
      if (cur <= 64) break;
      cand.max_instants = cur / 2;
      if (!try_candidate(std::move(cand))) break;
    }
  }

  // Stage 4: canonicalize the Bernoulli activation probability.
  if (!is_synchronous(best.config.protocol) &&
      best.config.scheduler == core::SchedulerKind::bernoulli &&
      best.config.p != 0.5) {
    FuzzConfig cand = best.config;
    cand.p = 0.5;
    (void)try_candidate(std::move(cand));
  }
  return best;
}

}  // namespace stig::fuzz
