// run_cases — fan a batch of fuzz cases across a BatchRunner pool.
//
// Each case is an independent simulation: its config derives entirely from
// its case seed (plus an optional armed fault shared by the whole batch),
// so cases parallelize with no coordination. Results come back indexed by
// position in `seeds` — the batch at --jobs 8 is byte-identical to the
// batch at --jobs 1, including schedule digests, which is the invariance
// property tests/test_par_runner.cpp and the tier-1 stigfuzz smoke pin.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "fuzz/fuzz_config.hpp"
#include "fuzz/fuzzer.hpp"
#include "obs/cov.hpp"

namespace stig::fuzz {

/// One executed case: the seed it came from, the sampled (and possibly
/// fault-armed) config, and the oracle verdict.
struct BatchCase {
  std::uint64_t case_seed = 0;
  FuzzConfig config;
  CaseResult result;
  /// Per-case coverage map (collect_coverage only; null otherwise). Owned
  /// per case — never shared across workers — so collection adds no
  /// synchronization and merging in seed order stays jobs-invariant.
  std::unique_ptr<obs::cov::CovMap> cov;
};

/// Runs every seed's case, `jobs` at a time (0 = hardware concurrency).
/// `fault`, when set, is armed on every case (stigfuzz --inject framing).
/// `force_faults` forces the fault-masking dimensions onto every case
/// (stigfuzz --faults): a seed-derived group size and FaultPlan replace
/// whatever the sampler drew, so the whole batch runs crash-masked.
/// `force_corrupts` instead forces the arbitrary-state dimension
/// (stigfuzz --corrupt): a seed-derived transient corruption, single-lane,
/// so the whole batch runs the stabilization oracle. The two forcings are
/// mutually exclusive; `force_corrupts` wins if both are set.
/// `collect_coverage` attaches a fresh CovMap to each case and returns it
/// in BatchCase::cov (stigfuzz --cov / --cov-guided).
/// The returned vector is ordered like `seeds` regardless of job count;
/// the first worker exception (if any) is rethrown after the pool drains.
[[nodiscard]] std::vector<BatchCase> run_cases(
    std::span<const std::uint64_t> seeds,
    const std::optional<FaultSpec>& fault = std::nullopt,
    std::size_t jobs = 0, bool force_faults = false,
    bool collect_coverage = false, bool force_corrupts = false);

}  // namespace stig::fuzz
