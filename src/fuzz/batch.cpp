#include "fuzz/batch.hpp"

#include "par/batch_runner.hpp"

namespace stig::fuzz {

std::vector<BatchCase> run_cases(std::span<const std::uint64_t> seeds,
                                 const std::optional<FaultSpec>& fault,
                                 std::size_t jobs, bool force_faults,
                                 bool collect_coverage, bool force_corrupts) {
  par::BatchRunner runner(par::BatchOptions{.jobs = jobs});
  return runner.map(seeds.size(), [&](std::size_t i) {
    BatchCase out;
    out.case_seed = seeds[i];
    out.config = sample_config(seeds[i]);
    out.config.fault = fault;
    if (force_faults) force_fault_dimensions(out.config);
    if (force_corrupts) force_corrupt_dimensions(out.config);
    if (collect_coverage) out.cov = std::make_unique<obs::cov::CovMap>();
    out.result = run_case(out.config, out.cov.get());
    return out;
  });
}

}  // namespace stig::fuzz
