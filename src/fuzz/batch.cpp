#include "fuzz/batch.hpp"

#include "par/batch_runner.hpp"

namespace stig::fuzz {

std::vector<BatchCase> run_cases(std::span<const std::uint64_t> seeds,
                                 const std::optional<FaultSpec>& fault,
                                 std::size_t jobs, bool force_faults) {
  par::BatchRunner runner(par::BatchOptions{.jobs = jobs});
  return runner.map(seeds.size(), [&](std::size_t i) {
    BatchCase out;
    out.case_seed = seeds[i];
    out.config = sample_config(seeds[i]);
    out.config.fault = fault;
    if (force_faults) force_fault_dimensions(out.config);
    out.result = run_case(out.config);
    return out;
  });
}

}  // namespace stig::fuzz
