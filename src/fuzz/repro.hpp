// Repro files — serialized failing fuzz cases.
//
// A repro is one flat JSON object holding a FuzzConfig plus the observed
// failure (kind, detail, schedule digest). It is the interchange format
// between stigfuzz (which writes `repro_<hash>.json` and `repro_last.json`
// on every shrunk failure) and `stigsim --replay` (which re-executes the
// config and verifies kind *and* schedule digest match — the bit-for-bit
// reproduction check). The format is intentionally flat so the hand-rolled
// parser below stays trivial; keys are stable and documented in
// docs/FUZZING.md.
#pragma once

#include <optional>
#include <ostream>
#include <string>

#include "fuzz/fuzz_config.hpp"
#include "fuzz/fuzzer.hpp"

namespace stig::fuzz {

struct Repro {
  FuzzConfig config;
  FailureKind kind = FailureKind::none;
  std::string detail;
  std::uint64_t schedule_digest = 0;
  std::size_t schedule_instants = 0;
};

/// Writes `r` as one flat JSON object (stable key order, trailing newline).
void write_repro_json(std::ostream& out, const Repro& r);

/// Writes `repro_<hash>.json` under `dir` (and a `repro_last.json` copy,
/// so scripts can chain without knowing the hash). Returns the hashed
/// path, or nullopt on I/O failure (`error` gets the reason).
[[nodiscard]] std::optional<std::string> save_repro(const std::string& dir,
                                                    const Repro& r,
                                                    std::string* error);

/// Parses a repro file. Returns nullopt and fills `error` on malformed
/// input (missing key, unknown protocol name, bad hex payload).
[[nodiscard]] std::optional<Repro> load_repro(const std::string& path,
                                              std::string* error);

}  // namespace stig::fuzz
