#include "fuzz/fuzzer.hpp"

#include <algorithm>
#include <memory>
#include <sstream>
#include <tuple>

#include "fault/injector.hpp"
#include "fault/redundant_group.hpp"
#include "obs/watchdog.hpp"

namespace stig::fuzz {
namespace {

/// (receiver, sender, payload) — the order-insensitive delivery signature
/// the delivery and differential oracles compare.
using DeliverySig =
    std::tuple<std::size_t, std::size_t, std::vector<std::uint8_t>>;

struct RunOutcome {
  bool constructed = false;  ///< Reached the end without throwing.
  bool watchdog = false;     ///< WatchdogError unwound the run.
  std::string error;
  bool quiescent = false;
  sim::Time instants = 0;
  std::vector<DeliverySig> deliveries;
  sim::ScheduleLog log;
};

RunOutcome run_one(const FuzzConfig& cfg, core::ProtocolKind kind,
                   bool apply_fault, obs::cov::CovMap* cov = nullptr) {
  RunOutcome out;
  core::ChatNetworkOptions opt = to_options(cfg, kind);
  opt.record_schedule = &out.log;

  obs::WatchdogOptions wopt;
  wopt.abort_on_violation = true;
  // Granular containment holds for the granular protocols only: Sync2 and
  // Async2 signal on the segment joining the two robots (same convention
  // as stigsim).
  wopt.check_granular = kind == core::ProtocolKind::sliced ||
                        kind == core::ProtocolKind::ksegment ||
                        kind == core::ProtocolKind::asyncn;
  std::vector<geom::Vec2> positions = scatter(cfg.seed, cfg.n);
  obs::Watchdog watchdog(wopt, positions);

  try {
    core::ChatNetwork net(positions, opt);
    net.attach_event_sink(&watchdog);
    net.attach_coverage(cov);
    if (apply_fault && cfg.fault) {
      net.inject_decode_fault(cfg.fault->robot % cfg.n, cfg.fault->nth_bit);
    }
    if (cfg.broadcast) {
      net.broadcast(0, cfg.payload);
    } else {
      net.send(0, 1, cfg.payload);
    }
    out.quiescent = net.run_until_quiescent(instant_budget(cfg));
    // Settle: quiescence means the sender finished; a few more instants
    // let every receiver's decode catch up (same tail stigsim runs). A
    // timed-out run skips it — it is already a failure, and running on
    // would let a shrunk budget "pass" on work done past the budget.
    if (out.quiescent) net.run(is_synchronous(kind) ? 4 : 512);
    out.instants = net.engine().now();
    for (std::size_t i = 0; i < cfg.n; ++i) {
      for (const core::Delivery& d : net.received(i)) {
        out.deliveries.emplace_back(i, d.from, d.payload);
      }
    }
    std::sort(out.deliveries.begin(), out.deliveries.end());
    out.constructed = true;
  } catch (const obs::WatchdogError& e) {
    out.watchdog = true;
    out.error = e.what();
  } catch (const std::exception& e) {
    out.error = e.what();
  }
  return out;
}

std::vector<DeliverySig> expected_deliveries(const FuzzConfig& cfg) {
  std::vector<DeliverySig> expect;
  if (cfg.broadcast) {
    for (std::size_t i = 1; i < cfg.n; ++i) {
      expect.emplace_back(i, std::size_t{0}, cfg.payload);
    }
  } else {
    expect.emplace_back(std::size_t{1}, std::size_t{0}, cfg.payload);
  }
  return expect;
}

std::string describe(const std::vector<DeliverySig>& got,
                     const std::vector<DeliverySig>& want) {
  std::ostringstream out;
  out << "expected " << want.size() << " delivery(ies), got " << got.size();
  for (const auto& [to, from, payload] : got) {
    out << " [" << from << "->" << to << " " << payload.size() << "B]";
  }
  return out.str();
}

/// Classifies one protocol run against the delivery + termination oracles;
/// FailureKind::none when both held.
FailureKind classify(const FuzzConfig& cfg, const RunOutcome& run,
                     const char* proto_name, std::string& detail) {
  if (run.watchdog) {
    detail = std::string(proto_name) + ": " + run.error;
    return FailureKind::watchdog_violation;
  }
  if (!run.constructed) {
    detail = std::string(proto_name) + ": " + run.error;
    return FailureKind::crash;
  }
  if (!run.quiescent) {
    std::ostringstream out;
    out << proto_name << ": not quiescent after "
        << instant_budget(cfg) << " instants";
    detail = out.str();
    return FailureKind::timeout;
  }
  const std::vector<DeliverySig> want = expected_deliveries(cfg);
  if (run.deliveries != want) {
    detail = std::string(proto_name) + ": " +
             describe(run.deliveries, want);
    return FailureKind::payload_mismatch;
  }
  return FailureKind::none;
}

/// The masked run: every lane is a full protocol run with its slice of the
/// fault plan injected; the oracles move up one level. Invariants are
/// checked per lane (report mode — a faulted lane's engine exception is a
/// tolerated member failure, not a case failure) plus the mask watchdog
/// over the vote; termination means no lane was still progressing when the
/// budget ran out (wedged lanes are the *expected* shape of a crash fault);
/// delivery compares the VOTED payloads against the fault-free expectation
/// — the crash-masking claim itself. The differential oracle is skipped:
/// redundancy, not protocol equivalence, is under test.
CaseResult run_case_masked(const FuzzConfig& cfg, obs::cov::CovMap* cov) {
  CaseResult result;
  const std::size_t g = cfg.group_size;
  const char* proto = core::protocol_kind_name(cfg.protocol);

  fault::RedundantOptions ropt;
  ropt.base = to_options(cfg, cfg.protocol);
  ropt.group_size = g;
  ropt.plan = cfg.fault_plan;
  ropt.record_schedules = true;

  // Stalled robots consume budget without progress, so the plan's total
  // stall time rides on top of the fault-free instant budget.
  sim::Time budget = instant_budget(cfg);
  for (const fault::StallFault& s : cfg.fault_plan.stalls) {
    budget += s.instants;
  }
  const sim::Time stall_window = std::max<sim::Time>(512, budget / 64);

  std::vector<geom::Vec2> positions = scatter(cfg.seed, cfg.n);
  obs::Watchdog mask_dog{obs::WatchdogOptions{}};
  std::vector<std::unique_ptr<obs::Watchdog>> lane_dogs;

  try {
    fault::RedundantChatNetwork net(positions, ropt);
    net.attach_coverage(cov);
    for (std::size_t l = 0; l < g; ++l) {
      obs::WatchdogOptions wopt;
      wopt.check_granular = cfg.protocol == core::ProtocolKind::sliced ||
                            cfg.protocol == core::ProtocolKind::ksegment ||
                            cfg.protocol == core::ProtocolKind::asyncn;
      const fault::FaultPlan& slice = net.injector(l).plan();
      // A burst corrupts decoded bits by design: the framing replay would
      // flag exactly the corruption the CRC is there to absorb. A jitter
      // shove may legitimately collide robots; the engine's own exception
      // settles the lane as a failed member.
      wopt.check_framing = slice.bursts.empty();
      wopt.check_separation = slice.jitters.empty();
      lane_dogs.push_back(std::make_unique<obs::Watchdog>(wopt, positions));
      net.attach_lane_sink(l, lane_dogs.back().get());
    }
    net.set_event_sink(&mask_dog);
    if (cfg.broadcast) {
      net.broadcast(0, cfg.payload);
    } else {
      net.send(0, 1, cfg.payload);
    }
    const auto res = net.run_until_settled(
        budget, stall_window, is_synchronous(cfg.protocol) ? 4 : 512);

    std::uint64_t digest = 0xcbf29ce484222325ULL;
    for (std::size_t l = 0; l < g; ++l) {
      digest ^= net.lane_log(l).digest();
      digest *= 0x100000001b3ULL;
      result.schedule_instants =
          std::max(result.schedule_instants, net.lane_log(l).instants());
    }
    result.schedule_digest = digest;
    result.instants = res.instants;

    for (std::size_t l = 0; l < g; ++l) {
      if (lane_dogs[l]->ok()) continue;
      const obs::WatchdogViolation& v = lane_dogs[l]->violations().front();
      result.kind = FailureKind::watchdog_violation;
      result.detail = std::string(proto) + " masked lane " +
                      std::to_string(l) + ": " + v.invariant + ": " +
                      v.detail;
      return result;
    }
    if (!mask_dog.ok()) {
      const obs::WatchdogViolation& v = mask_dog.violations().front();
      result.kind = FailureKind::watchdog_violation;
      result.detail =
          std::string(proto) + " mask: " + v.invariant + ": " + v.detail;
      return result;
    }
    if (res.timeout_lanes > 0) {
      std::ostringstream out;
      out << proto << " masked: " << res.timeout_lanes
          << " lane(s) still progressing after " << budget << " instants";
      result.kind = FailureKind::timeout;
      result.detail = out.str();
      return result;
    }
    std::vector<DeliverySig> got;
    for (std::size_t i = 0; i < cfg.n; ++i) {
      for (const fault::VotedDelivery& v : net.voted(i)) {
        got.emplace_back(i, v.from, v.payload);
      }
    }
    std::sort(got.begin(), got.end());
    const std::vector<DeliverySig> want = expected_deliveries(cfg);
    if (got != want) {
      result.kind = FailureKind::payload_mismatch;
      result.detail = std::string(proto) + " masked(g=" + std::to_string(g) +
                      "): " + describe(got, want);
      return result;
    }
  } catch (const std::exception& e) {
    result.kind = FailureKind::crash;
    result.detail = std::string(proto) + " masked: " + e.what();
  }
  return result;
}

/// One phase-A + phase-B stabilization run (see run_case_corrupted).
struct StabOutcome {
  bool constructed = false;
  std::string error;
  bool quiescent_a = false;
  bool quiescent_b = false;
  sim::Time instants = 0;
  std::vector<DeliverySig> phase_a;  ///< Deliveries up to the probe send.
  std::vector<DeliverySig> phase_b;  ///< Deliveries after it.
  sim::ScheduleLog log;
  std::uint64_t violations = 0;
  std::string violation_detail;
};

/// The stabilization oracle: a single-lane run whose plan schedules
/// transient corruptions. The corrupted run and a fault-free twin each
/// send the payload, run to quiescence plus a settle window (phase A),
/// then send a fresh probe and run again (phase B). While converging the
/// corrupted run may misroute or lose data — but may not deliver garbage
/// (the CRC owns that), may not trip any movement invariant, and must be
/// delivering again within the reconvergence budget. From the recovery
/// point on it must be indistinguishable: its phase-B transcript has to
/// equal the twin's.
CaseResult run_case_corrupted(const FuzzConfig& cfg, obs::cov::CovMap* cov) {
  CaseResult result;
  const char* proto = core::protocol_kind_name(cfg.protocol);
  const sim::Time budget = instant_budget(cfg);
  // The settle window must exceed the synchronous 3-idle-instant resync
  // rule so planted decoder garbage can age out before the probe.
  const sim::Time settle = is_synchronous(cfg.protocol) ? 8 : 512;
  // Probe payload: distinct from cfg.payload so a stale in-flight frame
  // cannot masquerade as the probe.
  const std::vector<std::uint8_t> probe = {
      0xA5, static_cast<std::uint8_t>(cfg.seed),
      static_cast<std::uint8_t>(cfg.seed >> 8)};

  const auto run_stab = [&](bool corrupt, obs::cov::CovMap* cmap) {
    StabOutcome out;
    core::ChatNetworkOptions opt = to_options(cfg, cfg.protocol);
    opt.record_schedule = &out.log;
    obs::WatchdogOptions wopt;
    wopt.check_granular = cfg.protocol == core::ProtocolKind::sliced ||
                          cfg.protocol == core::ProtocolKind::ksegment ||
                          cfg.protocol == core::ProtocolKind::asyncn;
    // A scrambled parser or cursor legitimately yields CRC-corrupt frames
    // while converging; the replayed-stream framing check would flag
    // exactly the damage the corruption planted.
    wopt.check_framing = !corrupt;
    // Recovery bound: the probe must land within one fresh budget (plus
    // the settle tail) of the corruption.
    wopt.reconverge_budget = corrupt ? budget + settle : 0;
    std::vector<geom::Vec2> positions = scatter(cfg.seed, cfg.n);
    obs::Watchdog dog(wopt, positions);
    try {
      core::ChatNetwork net(positions, opt);
      net.attach_event_sink(&dog);
      net.attach_coverage(cmap);
      if (corrupt) fault::arm_corruptions(net, cfg.fault_plan);
      if (cfg.broadcast) {
        net.broadcast(0, cfg.payload);
      } else {
        net.send(0, 1, cfg.payload);
      }
      out.quiescent_a = net.run_until_quiescent(budget);
      if (out.quiescent_a) {
        net.run(settle);
        for (std::size_t i = 0; i < cfg.n; ++i) {
          for (const core::Delivery& d : net.received(i)) {
            out.phase_a.emplace_back(i, d.from, d.payload);
          }
        }
        if (cfg.broadcast) {
          net.broadcast(0, probe);
        } else {
          net.send(0, 1, probe);
        }
        out.quiescent_b = net.run_until_quiescent(budget);
        if (out.quiescent_b) net.run(settle);
        std::vector<DeliverySig> all;
        for (std::size_t i = 0; i < cfg.n; ++i) {
          for (const core::Delivery& d : net.received(i)) {
            all.emplace_back(i, d.from, d.payload);
          }
        }
        // received() accumulates in arrival order per robot, so phase B is
        // the per-robot suffix: everything not already counted in phase A.
        std::sort(out.phase_a.begin(), out.phase_a.end());
        std::sort(all.begin(), all.end());
        out.phase_b = all;
        for (const DeliverySig& sig : out.phase_a) {
          const auto it = std::find(out.phase_b.begin(), out.phase_b.end(),
                                    sig);
          if (it != out.phase_b.end()) out.phase_b.erase(it);
        }
      }
      out.instants = net.engine().now();
      dog.finalize(out.instants);
      out.constructed = true;
      out.violations = dog.total_violations();
      if (!dog.ok()) {
        const obs::WatchdogViolation& v = dog.violations().front();
        out.violation_detail = v.invariant + ": " + v.detail;
      }
    } catch (const std::exception& e) {
      out.error = e.what();
    }
    return out;
  };

  const StabOutcome run = run_stab(/*corrupt=*/true, cov);
  result.schedule_digest = run.log.digest();
  result.schedule_instants = run.log.instants();
  result.instants = run.instants;

  if (!run.constructed) {
    result.kind = FailureKind::crash;
    result.detail = std::string(proto) + " corrupted: " + run.error;
    return result;
  }
  if (run.violations > 0) {
    result.kind = FailureKind::watchdog_violation;
    result.detail =
        std::string(proto) + " corrupted: " + run.violation_detail;
    return result;
  }
  if (!run.quiescent_a || !run.quiescent_b) {
    std::ostringstream out;
    out << proto << " corrupted: phase " << (run.quiescent_a ? "B" : "A")
        << " not quiescent after " << budget << " instants";
    result.kind = FailureKind::timeout;
    result.detail = out.str();
    return result;
  }
  // Payload integrity during convergence: misrouted or lost deliveries are
  // tolerated, fabricated ones are not — every phase-A payload must be the
  // one actually injected.
  for (const auto& [to, from, payload] : run.phase_a) {
    if (payload != cfg.payload) {
      result.kind = FailureKind::payload_mismatch;
      result.detail = std::string(proto) +
                      " corrupted: phase A delivered a payload nobody sent";
      return result;
    }
  }

  // Post-recovery transcript: the probe phase must be bit-for-bit the
  // fault-free twin's.
  const StabOutcome twin = run_stab(/*corrupt=*/false, nullptr);
  std::string twin_detail;
  if (!twin.constructed || twin.violations > 0 || !twin.quiescent_a ||
      !twin.quiescent_b) {
    // The config is broken without any corruption: classify as the plain
    // failure it is so the shrinker can drop the corrupt spec entirely.
    if (!twin.constructed) {
      result.kind = FailureKind::crash;
      result.detail = std::string(proto) + " twin: " + twin.error;
    } else if (twin.violations > 0) {
      result.kind = FailureKind::watchdog_violation;
      result.detail = std::string(proto) + " twin: " + twin.violation_detail;
    } else {
      result.kind = FailureKind::timeout;
      result.detail = std::string(proto) + " twin: not quiescent within " +
                      std::to_string(budget) + " instants";
    }
    return result;
  }
  if (run.phase_b != twin.phase_b) {
    result.kind = FailureKind::stabilization_mismatch;
    result.detail = std::string(proto) + " corrupted: probe transcript " +
                    describe(run.phase_b, twin.phase_b) +
                    " (vs fault-free twin)";
    return result;
  }
  return result;
}

}  // namespace

const char* failure_kind_name(FailureKind kind) {
  switch (kind) {
    case FailureKind::none: return "none";
    case FailureKind::payload_mismatch: return "payload_mismatch";
    case FailureKind::differential_mismatch: return "differential_mismatch";
    case FailureKind::watchdog_violation: return "watchdog_violation";
    case FailureKind::timeout: return "timeout";
    case FailureKind::crash: return "crash";
    case FailureKind::stabilization_mismatch: return "stabilization_mismatch";
  }
  return "none";
}

FailureKind failure_kind_from_name(const std::string& name) {
  for (FailureKind k :
       {FailureKind::payload_mismatch, FailureKind::differential_mismatch,
        FailureKind::watchdog_violation, FailureKind::timeout,
        FailureKind::crash, FailureKind::stabilization_mismatch}) {
    if (name == failure_kind_name(k)) return k;
  }
  return FailureKind::none;
}

CaseResult run_case(const FuzzConfig& cfg, obs::cov::CovMap* cov) {
  // A one-shot decode flip (the --inject pipeline self-test) forces the
  // single-lane path: the flip itself is under test, and the masked run
  // has no receiver to arm it on.
  if (cfg.group_size > 1 && !cfg.fault) return run_case_masked(cfg, cov);
  // Single-lane transient corruption: the self-stabilization oracle.
  if (cfg.group_size == 1 && !cfg.fault_plan.corrupts.empty()) {
    return run_case_corrupted(cfg, cov);
  }
  CaseResult result;
  const RunOutcome primary =
      run_one(cfg, cfg.protocol, /*apply_fault=*/true, cov);
  result.schedule_digest = primary.log.digest();
  result.schedule_instants = primary.log.instants();
  result.instants = primary.instants;

  result.kind = classify(cfg, primary,
                         core::protocol_kind_name(cfg.protocol),
                         result.detail);
  if (result.kind != FailureKind::none) return result;

  // Differential oracle. A faulted run is supposed to diverge from its
  // clean siblings, so injection disables the comparison.
  if (cfg.fault) return result;
  for (core::ProtocolKind peer : equivalence_class(cfg.protocol, cfg.n)) {
    if (peer == cfg.protocol) continue;
    const RunOutcome alt = run_one(cfg, peer, /*apply_fault=*/false);
    result.kind = classify(cfg, alt, core::protocol_kind_name(peer),
                           result.detail);
    if (result.kind != FailureKind::none) return result;
    if (alt.deliveries != primary.deliveries) {
      result.kind = FailureKind::differential_mismatch;
      result.detail = std::string(core::protocol_kind_name(cfg.protocol)) +
                      " vs " + core::protocol_kind_name(peer) +
                      " delivered different payload sets";
      return result;
    }
  }
  return result;
}

}  // namespace stig::fuzz
