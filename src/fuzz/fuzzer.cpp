#include "fuzz/fuzzer.hpp"

#include <algorithm>
#include <sstream>
#include <tuple>

#include "obs/watchdog.hpp"

namespace stig::fuzz {
namespace {

/// (receiver, sender, payload) — the order-insensitive delivery signature
/// the delivery and differential oracles compare.
using DeliverySig =
    std::tuple<std::size_t, std::size_t, std::vector<std::uint8_t>>;

struct RunOutcome {
  bool constructed = false;  ///< Reached the end without throwing.
  bool watchdog = false;     ///< WatchdogError unwound the run.
  std::string error;
  bool quiescent = false;
  sim::Time instants = 0;
  std::vector<DeliverySig> deliveries;
  sim::ScheduleLog log;
};

RunOutcome run_one(const FuzzConfig& cfg, core::ProtocolKind kind,
                   bool apply_fault) {
  RunOutcome out;
  core::ChatNetworkOptions opt = to_options(cfg, kind);
  opt.record_schedule = &out.log;

  obs::WatchdogOptions wopt;
  wopt.abort_on_violation = true;
  // Granular containment holds for the granular protocols only: Sync2 and
  // Async2 signal on the segment joining the two robots (same convention
  // as stigsim).
  wopt.check_granular = kind == core::ProtocolKind::sliced ||
                        kind == core::ProtocolKind::ksegment ||
                        kind == core::ProtocolKind::asyncn;
  std::vector<geom::Vec2> positions = scatter(cfg.seed, cfg.n);
  obs::Watchdog watchdog(wopt, positions);

  try {
    core::ChatNetwork net(positions, opt);
    net.attach_event_sink(&watchdog);
    if (apply_fault && cfg.fault) {
      net.inject_decode_fault(cfg.fault->robot % cfg.n, cfg.fault->nth_bit);
    }
    if (cfg.broadcast) {
      net.broadcast(0, cfg.payload);
    } else {
      net.send(0, 1, cfg.payload);
    }
    out.quiescent = net.run_until_quiescent(instant_budget(cfg));
    // Settle: quiescence means the sender finished; a few more instants
    // let every receiver's decode catch up (same tail stigsim runs). A
    // timed-out run skips it — it is already a failure, and running on
    // would let a shrunk budget "pass" on work done past the budget.
    if (out.quiescent) net.run(is_synchronous(kind) ? 4 : 512);
    out.instants = net.engine().now();
    for (std::size_t i = 0; i < cfg.n; ++i) {
      for (const core::Delivery& d : net.received(i)) {
        out.deliveries.emplace_back(i, d.from, d.payload);
      }
    }
    std::sort(out.deliveries.begin(), out.deliveries.end());
    out.constructed = true;
  } catch (const obs::WatchdogError& e) {
    out.watchdog = true;
    out.error = e.what();
  } catch (const std::exception& e) {
    out.error = e.what();
  }
  return out;
}

std::vector<DeliverySig> expected_deliveries(const FuzzConfig& cfg) {
  std::vector<DeliverySig> expect;
  if (cfg.broadcast) {
    for (std::size_t i = 1; i < cfg.n; ++i) {
      expect.emplace_back(i, std::size_t{0}, cfg.payload);
    }
  } else {
    expect.emplace_back(std::size_t{1}, std::size_t{0}, cfg.payload);
  }
  return expect;
}

std::string describe(const std::vector<DeliverySig>& got,
                     const std::vector<DeliverySig>& want) {
  std::ostringstream out;
  out << "expected " << want.size() << " delivery(ies), got " << got.size();
  for (const auto& [to, from, payload] : got) {
    out << " [" << from << "->" << to << " " << payload.size() << "B]";
  }
  return out.str();
}

/// Classifies one protocol run against the delivery + termination oracles;
/// FailureKind::none when both held.
FailureKind classify(const FuzzConfig& cfg, const RunOutcome& run,
                     const char* proto_name, std::string& detail) {
  if (run.watchdog) {
    detail = std::string(proto_name) + ": " + run.error;
    return FailureKind::watchdog_violation;
  }
  if (!run.constructed) {
    detail = std::string(proto_name) + ": " + run.error;
    return FailureKind::crash;
  }
  if (!run.quiescent) {
    std::ostringstream out;
    out << proto_name << ": not quiescent after "
        << instant_budget(cfg) << " instants";
    detail = out.str();
    return FailureKind::timeout;
  }
  const std::vector<DeliverySig> want = expected_deliveries(cfg);
  if (run.deliveries != want) {
    detail = std::string(proto_name) + ": " +
             describe(run.deliveries, want);
    return FailureKind::payload_mismatch;
  }
  return FailureKind::none;
}

}  // namespace

const char* failure_kind_name(FailureKind kind) {
  switch (kind) {
    case FailureKind::none: return "none";
    case FailureKind::payload_mismatch: return "payload_mismatch";
    case FailureKind::differential_mismatch: return "differential_mismatch";
    case FailureKind::watchdog_violation: return "watchdog_violation";
    case FailureKind::timeout: return "timeout";
    case FailureKind::crash: return "crash";
  }
  return "none";
}

FailureKind failure_kind_from_name(const std::string& name) {
  for (FailureKind k :
       {FailureKind::payload_mismatch, FailureKind::differential_mismatch,
        FailureKind::watchdog_violation, FailureKind::timeout,
        FailureKind::crash}) {
    if (name == failure_kind_name(k)) return k;
  }
  return FailureKind::none;
}

CaseResult run_case(const FuzzConfig& cfg) {
  CaseResult result;
  const RunOutcome primary = run_one(cfg, cfg.protocol, /*apply_fault=*/true);
  result.schedule_digest = primary.log.digest();
  result.schedule_instants = primary.log.instants();
  result.instants = primary.instants;

  result.kind = classify(cfg, primary,
                         core::protocol_kind_name(cfg.protocol),
                         result.detail);
  if (result.kind != FailureKind::none) return result;

  // Differential oracle. A faulted run is supposed to diverge from its
  // clean siblings, so injection disables the comparison.
  if (cfg.fault) return result;
  for (core::ProtocolKind peer : equivalence_class(cfg.protocol, cfg.n)) {
    if (peer == cfg.protocol) continue;
    const RunOutcome alt = run_one(cfg, peer, /*apply_fault=*/false);
    result.kind = classify(cfg, alt, core::protocol_kind_name(peer),
                           result.detail);
    if (result.kind != FailureKind::none) return result;
    if (alt.deliveries != primary.deliveries) {
      result.kind = FailureKind::differential_mismatch;
      result.detail = std::string(core::protocol_kind_name(cfg.protocol)) +
                      " vs " + core::protocol_kind_name(peer) +
                      " delivered different payload sets";
      return result;
    }
  }
  return result;
}

}  // namespace stig::fuzz
