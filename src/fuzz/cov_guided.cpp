#include "fuzz/cov_guided.hpp"

#include <sstream>

namespace stig::fuzz {
namespace {

/// The feature tokens a signature is made of: each '/'-separated chunk,
/// plus each fault-kind letter of the masked chunk individually ("g3csb"
/// also yields "c", "s", "b"). Tokens are what the greedy bucket order
/// maximizes — a protocol, a scheduler class, or a fault kind seen in ANY
/// earlier bucket is unlikely to contribute new edges again, whichever
/// bucket it appears in.
std::vector<std::string> tokens_of(const std::string& sig) {
  std::vector<std::string> out;
  std::stringstream ss(sig);
  std::string chunk;
  std::string proto;  // First chunk; anchors the composite tokens.
  std::string cast;   // "bcast"/"uni"; anchors the triple below.
  while (std::getline(ss, chunk, '/')) {
    if (chunk.empty()) continue;
    if (proto.empty()) proto = chunk;
    out.push_back(chunk);
    if (chunk == "bcast" || chunk == "uni" ||
        (chunk.size() == 2 && chunk[0] == 'n')) {
      // A protocol's phase machine differs in kind with swarm size and
      // cast (separator/address phases only exist past n = 2, broadcast
      // only signals on the sender's diameter), so protocol x band and
      // protocol x cast are coverage features of their own.
      out.push_back(proto + "." + chunk);
    }
    if (chunk == "bcast" || chunk == "uni") cast = chunk;
    if (chunk.size() == 2 && chunk[0] == 'n' && !cast.empty()) {
      // And the full protocol x cast x band triple: e.g. the ksegment
      // address-chaining edges only exist when one sender addresses
      // several receivers — broadcast at n > 2, neither pair alone.
      out.push_back(proto + "." + cast + "." + chunk);
    }
    if (chunk[0] == 'g') {
      for (std::size_t i = 1; i < chunk.size(); ++i) {
        if (chunk[i] >= 'a' && chunk[i] <= 'z') {
          out.push_back(std::string(1, chunk[i]));
        }
      }
    }
    if (chunk.rfind("corrupt", 0) == 0) {
      // A corruption perturbs the *protocol's* state machine, so which
      // driver absorbs which damage is a coverage feature of its own
      // (asyncn knocked into go_center covers edges no clean asyncn run
      // has, and a phase scramble lands differently than a parser one).
      out.push_back("corrupt");
      out.push_back(proto + ".corrupt");
      out.push_back(proto + "." + chunk);
    }
  }
  return out;
}

}  // namespace

std::string config_signature(const FuzzConfig& cfg) {
  std::ostringstream out;
  out << core::protocol_kind_name(cfg.protocol);
  // The scheduler class only matters where a scheduler runs at all.
  if (!is_synchronous(cfg.protocol)) {
    out << "/" << core::scheduler_kind_name(cfg.scheduler);
  }
  out << "/" << (cfg.broadcast ? "bcast" : "uni");
  // Swarm-size band: pair protocols are their own class already; for the
  // n-robot protocols the interesting split is small ring vs large ring
  // (slice geometry and scheduler interleavings differ in kind, not just
  // degree).
  out << "/n" << (cfg.n <= 2 ? "2" : cfg.n <= 8 ? "s" : "l");
  if (cfg.group_size > 1) {
    out << "/g" << cfg.group_size;
    const fault::FaultPlan& p = cfg.fault_plan;
    // Which fault classes the plan can exercise at all.
    if (!p.crashes.empty()) out << "c";
    if (!p.stalls.empty()) out << "s";
    if (!p.jitters.empty()) out << "j";
    if (!p.bursts.empty()) out << "b";
  }
  // The arbitrary-state dimension is single-lane (group 1), so it needs
  // its own chunk, and a per-target one: the fault.corrupt_<target>
  // edges — and the off-path phase transitions a corruption knocks a
  // protocol into — only exist in corrupted cases of that target.
  for (const fault::CorruptFault& c : cfg.fault_plan.corrupts) {
    out << "/corrupt_" << fault::corrupt_target_name(c.target);
  }
  return out.str();
}

std::vector<std::uint64_t> guided_order(
    std::span<const std::uint64_t> seeds) {
  // Buckets keyed by signature, ordered by first appearance so the output
  // is a function of the seed sequence alone.
  std::vector<std::string> keys;
  std::vector<std::vector<std::uint64_t>> buckets;
  for (const std::uint64_t seed : seeds) {
    const std::string sig = config_signature(sample_config(seed));
    std::size_t b = 0;
    while (b < keys.size() && keys[b] != sig) ++b;
    if (b == keys.size()) {
      keys.push_back(sig);
      buckets.emplace_back();
    }
    buckets[b].push_back(seed);
  }
  // Greedy feature cover: emit first the bucket whose signature carries
  // the most tokens no earlier bucket has (ties: first appearance). A
  // bucket whose every feature is already covered goes to the back of the
  // line — it can still hold edges of its own (feature *combinations*
  // matter), but rarely the bulk of them.
  std::vector<std::size_t> bucket_order;
  std::vector<bool> taken(buckets.size(), false);
  std::vector<std::string> seen;
  const auto unseen_count = [&](std::size_t b) {
    std::size_t count = 0;
    for (const std::string& tok : tokens_of(keys[b])) {
      bool found = false;
      for (const std::string& s : seen) found |= s == tok;
      if (!found) ++count;
    }
    return count;
  };
  for (std::size_t round = 0; round < buckets.size(); ++round) {
    std::size_t best = buckets.size();
    std::size_t best_count = 0;
    for (std::size_t b = 0; b < buckets.size(); ++b) {
      if (taken[b]) continue;
      const std::size_t count = unseen_count(b);
      if (best == buckets.size() || count > best_count) {
        best = b;
        best_count = count;
      }
    }
    taken[best] = true;
    bucket_order.push_back(best);
    for (const std::string& tok : tokens_of(keys[best])) {
      bool found = false;
      for (const std::string& s : seen) found |= s == tok;
      if (!found) seen.push_back(tok);
    }
  }

  std::vector<std::uint64_t> order;
  order.reserve(seeds.size());
  for (std::size_t round = 0; order.size() < seeds.size(); ++round) {
    for (const std::size_t b : bucket_order) {
      if (round < buckets[b].size()) order.push_back(buckets[b][round]);
    }
  }
  return order;
}

}  // namespace stig::fuzz
