// Coverage-guided seed scheduling (stigfuzz --cov-guided).
//
// The blind corpus walks seeds in numeric order, so early cases tend to
// cluster in whatever region of the config space the sampler visits first
// and the corpus's full edge set is only reached near the end. The guided
// schedule reorders the *same* seed set before anything runs: each seed's
// config is sampled (cheap — no simulation) and bucketed by a coarse
// configuration signature (protocol x scheduler x broadcast x masked x
// fault-plan shape x corruption target x swarm-size band — the
// dimensions that gate which coverage edges a case can possibly reach),
// then seeds are dealt
// round-robin across the buckets, preserving numeric order within each.
// The first |buckets| cases already span every configuration class in the
// corpus, which is what makes the guided schedule reach the blind
// corpus's full edge set in a fraction of the cases.
//
// The reorder is a pure function of the seed set: no feedback loop, no
// mutation, no dependence on run results or job count. Every case still
// runs exactly as it would blind (same config, same digest), replay and
// repro files are untouched, and the COV artifact merged in scheduled
// order is byte-identical at any --jobs.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "fuzz/fuzz_config.hpp"

namespace stig::fuzz {

/// The coarse configuration class `cfg` falls into — the bucket key the
/// guided schedule deals over. Stable across runs (built from stable kind
/// names), human-readable for --cov logs and tests.
[[nodiscard]] std::string config_signature(const FuzzConfig& cfg);

/// Reorders `seeds` for coverage-guided execution: round-robin over
/// config_signature buckets (buckets ordered by first appearance,
/// numeric seed order kept within each). Deterministic: the result
/// depends only on the seed values, never on job count or timing.
[[nodiscard]] std::vector<std::uint64_t> guided_order(
    std::span<const std::uint64_t> seeds);

}  // namespace stig::fuzz
