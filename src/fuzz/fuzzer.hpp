// run_case — execute one fuzz config under every oracle.
//
// A case runs its primary protocol with the invariant watchdog in abort
// mode and the activation schedule recorded, then checks three oracles:
//
//   delivery       the queued payload arrives byte-equal at its addressee
//                  (every non-sender, for broadcasts), exactly once, and
//                  nothing else arrives;
//   termination    the run reaches quiescence within the config's instant
//                  budget, and no invariant (separation, granular
//                  containment, bit order, framing CRC) is violated;
//   differential   every protocol in the config's equivalence class
//                  delivers the identical payload multiset under the same
//                  scheduler seed — skipped when a fault is injected
//                  (a faulted run is *supposed* to diverge).
//
// The result carries the schedule digest of the primary run: replaying the
// same config must reproduce both the failure kind and the digest, which is
// the harness's definition of "bit-for-bit".
//
// Configs with group_size > 1 instead run masked through
// fault::RedundantChatNetwork: per-lane watchdogs (report mode) plus the
// mask-agreement watchdog replace the abort-mode watchdog, termination
// means no lane exhausted the budget while still progressing, and the
// delivery oracle compares the *voted* payloads — the crash-masking claim.
// The schedule digest is then the FNV combination of the per-lane digests.
//
// Single-lane configs whose plan schedules a transient corruption
// (`corrupt:` entries) run the *stabilization* oracle instead: the
// corrupted state machines must reconverge — phase A sends the payload,
// applies the corruption mid-flight and runs to quiescence plus a settle
// window (misrouting and loss are tolerated while converging, garbage
// payloads are not); phase B then sends a fresh probe, which must arrive
// exactly like it does in a fault-free twin of the same config. Any
// divergence of the post-recovery transcript is a stabilization_mismatch;
// a run that never delivers again within the reconvergence budget trips
// the watchdog's `reconverged` invariant.
#pragma once

#include <cstdint>
#include <string>

#include "fuzz/fuzz_config.hpp"
#include "obs/cov.hpp"

namespace stig::fuzz {

enum class FailureKind : unsigned char {
  none,                   ///< All oracles passed.
  payload_mismatch,       ///< Wrong, missing, or extra delivery.
  differential_mismatch,  ///< Equivalence-class protocols disagreed.
  watchdog_violation,     ///< An invariant tripped (abort mode).
  timeout,                ///< Budget elapsed before quiescence.
  crash,                  ///< The engine threw something else.
  // Appended (repro files store kinds by name, not ordinal, but keeping
  // the order stable costs nothing).
  stabilization_mismatch,  ///< Post-corruption transcript diverged from the
                           ///< fault-free twin's (self-stabilization oracle).
};

/// Stable lower-case name ("payload_mismatch", ...).
[[nodiscard]] const char* failure_kind_name(FailureKind kind);
/// Inverse of failure_kind_name; `none` for unknown names.
[[nodiscard]] FailureKind failure_kind_from_name(const std::string& name);

struct CaseResult {
  FailureKind kind = FailureKind::none;
  std::string detail;                  ///< Human-readable one-liner.
  std::uint64_t schedule_digest = 0;   ///< Primary run's schedule.
  std::size_t schedule_instants = 0;
  sim::Time instants = 0;              ///< Primary run's engine clock.
};

/// Runs `cfg` under all oracles. Deterministic: equal configs produce
/// equal results, digests included. When `cov` is non-null the primary run
/// (every lane, for masked configs) records proto/frame/sched/fault edges
/// into it — differential peer runs stay uninstrumented, so a case's
/// coverage describes exactly its configured protocol. Collection never
/// perturbs the run: the map is a passive observer, and digests are
/// byte-identical with or without it.
[[nodiscard]] CaseResult run_case(const FuzzConfig& cfg,
                                  obs::cov::CovMap* cov = nullptr);

}  // namespace stig::fuzz
