// FuzzConfig — one point in the schedule-fuzzing search space.
//
// A config pins everything a case needs to be reproducible bit-for-bit:
// the protocol, the scheduler class and its parameters, the swarm size
// (geometry derives from the seed via the stigsim scatter recipe), the
// payload, and an optional injected decode fault. `sample_config` draws a
// config from a case seed; `instant_budget` computes the termination bound
// the timeout oracle enforces; `equivalence_class` lists the protocols that
// must deliver identical payloads under the same schedule (the differential
// oracle); `config_hash` fingerprints the canonical serialization for
// repro file names.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/chat_network.hpp"
#include "fault/fault_plan.hpp"
#include "geom/vec.hpp"
#include "sim/types.hpp"

namespace stig::fuzz {

/// A one-shot injected decode fault: robot `robot` misreads its
/// `nth_bit`-th decoded signal. Used to prove the pipeline end to end —
/// the CRC must catch the flip, the delivery oracle must see the loss.
struct FaultSpec {
  std::size_t robot = 1;
  std::uint64_t nth_bit = 10;
};

/// One fuzz case. Every field participates in the canonical serialization,
/// so equal configs hash equal and replay identically.
struct FuzzConfig {
  std::uint64_t seed = 1;  ///< Placement + frames + scheduler randomness.
  core::ProtocolKind protocol = core::ProtocolKind::sync2;
  core::SchedulerKind scheduler = core::SchedulerKind::bernoulli;
  double p = 0.5;                   ///< Bernoulli activation probability.
  std::size_t subset_size = 1;      ///< KSubset scheduler subset size.
  std::size_t fairness_bound = 64;
  std::size_t n = 2;                ///< Swarm size (>= 2).
  std::vector<std::uint8_t> payload;
  bool broadcast = false;           ///< One-to-all from robot 0; otherwise
                                    ///< unicast 0 -> 1.
  sim::Time max_instants = 0;       ///< 0 = use instant_budget(*this).
  std::optional<FaultSpec> fault;   ///< Injected decode fault, if any.

  // Fault-masking dimensions (src/fault). group_size == 1 and an empty
  // plan mean the classic single-lane run; neither contributes to the
  // canonical serialization then, so pre-existing config hashes are
  // unchanged. group_size >= 2 runs the case through
  // fault::RedundantChatNetwork with `fault_plan` applied (plan robots are
  // physical indices: lane * n + logical).
  std::size_t group_size = 1;
  fault::FaultPlan fault_plan;
};

/// True for the synchronous-side protocols (sync2/sliced/ksegment).
[[nodiscard]] bool is_synchronous(core::ProtocolKind kind);

/// The protocols that must behave identically to `kind` at swarm size `n`
/// (including `kind` itself, first). Singleton when nothing else applies.
[[nodiscard]] std::vector<core::ProtocolKind> equivalence_class(
    core::ProtocolKind kind, std::size_t n);

/// The stigsim scatter recipe: n points in [-30, 30]^2, pairwise gap >= 3,
/// drawn from Rng(seed ^ 0x5745). Geometry is derived, never stored.
[[nodiscard]] std::vector<geom::Vec2> scatter(std::uint64_t seed,
                                              std::size_t n);

/// Instants the config is allowed before the timeout oracle trips.
/// Scales with frame bits, swarm size, and the scheduler's activation rate.
[[nodiscard]] sim::Time instant_budget(const FuzzConfig& cfg);

/// Deterministically draws a config from `case_seed` (protocol x scheduler
/// x n x payload x broadcast). Never arms a decode FaultSpec; a fraction of
/// cases draw the fault-masking dimensions (group_size in {2, 3} plus a
/// FaultPlan confined to lanes 1..g-1, so lane 0 always witnesses the
/// fault-free behaviour and the delivery oracle stays exact). A further
/// fraction of the *single-lane* remainder draw one transient-corruption
/// fault (a `corrupt:` plan entry) instead — the arbitrary-state mode whose
/// oracle is run_case's stabilization path. Both draws come last, so the
/// base config a given seed produces is unchanged from earlier corpora.
[[nodiscard]] FuzzConfig sample_config(std::uint64_t case_seed);

/// Forces the fault-masking dimensions onto `cfg` (stigfuzz --faults):
/// group size and plan derived from cfg.seed, lane 0 kept clean. Replaces
/// any existing plan; refreshes max_instants.
void force_fault_dimensions(FuzzConfig& cfg);

/// Forces the arbitrary-state dimension onto `cfg` (stigfuzz --corrupt):
/// one seed-derived transient corruption, single-lane. Replaces any
/// existing plan and group size; refreshes max_instants.
void force_corrupt_dimensions(FuzzConfig& cfg);

/// ChatNetworkOptions for running `cfg` as protocol `kind` (the
/// differential oracle substitutes class members for cfg.protocol).
[[nodiscard]] core::ChatNetworkOptions to_options(const FuzzConfig& cfg,
                                                  core::ProtocolKind kind);

/// Canonical one-line serialization (key=value, fixed order).
[[nodiscard]] std::string canonical(const FuzzConfig& cfg);

/// FNV-1a over canonical(cfg).
[[nodiscard]] std::uint64_t config_hash(const FuzzConfig& cfg);

}  // namespace stig::fuzz
