#include "fuzz/fuzz_config.hpp"

#include <algorithm>
#include <sstream>

#include "par/seed.hpp"
#include "sim/rng.hpp"

namespace stig::fuzz {
namespace {

/// Draws the fault-masking plan for `cfg`: faults target physical robots
/// in lanes 1..group_size-1 only (lane 0 stays the fault-free witness) and
/// fire inside the first quarter of the instant budget, where the payload
/// is actually in flight. Derived from cfg.seed — independent of the
/// sampling RNG so forcing the dimensions later lands on the same plan.
fault::FaultPlan sample_case_fault_plan(const FuzzConfig& cfg) {
  fault::FaultPlanShape shape;
  shape.robots = (cfg.group_size - 1) * cfg.n;
  shape.horizon =
      std::max<sim::Time>(1, instant_budget(cfg) / 4);
  shape.max_crashes = 2;
  shape.max_stalls = 1;
  shape.max_jitters = 1;
  shape.max_bursts = 1;
  shape.stall_max = 128;
  shape.jitter_ticks_max = 512;
  shape.burst_bit_max = 8 * (cfg.payload.size() + 2) * 2;
  shape.burst_width_max = 5;
  fault::FaultPlan plan = fault::sample_fault_plan(
      par::derive_seed(cfg.seed, 0xfa17), shape);
  // Shift every target out of lane 0.
  for (auto& f : plan.crashes) f.robot += cfg.n;
  for (auto& f : plan.stalls) f.robot += cfg.n;
  for (auto& f : plan.jitters) f.robot += cfg.n;
  for (auto& f : plan.bursts) f.robot += cfg.n;
  return plan;
}

/// One transient corruption for `cfg`: any robot, any target, scheduled in
/// the first quarter of the budget. Used by both the sampler (drawing from
/// the case RNG) and force_corrupt_dimensions (its own derived RNG).
fault::CorruptFault sample_corruption(sim::Rng& rng, const FuzzConfig& cfg) {
  fault::CorruptFault c;
  c.robot = static_cast<sim::RobotIndex>(
      rng.uniform_int(0, static_cast<std::uint64_t>(cfg.n) - 1));
  // Early in the first transfer: signaling the first payload bit takes
  // longer than this in every protocol (async transfers run thousands of
  // instants), so the corruption lands on a *live* state machine instead
  // of scrambling an idle swarm after quiescence — which would exercise
  // nothing. The budget-scaled cap keeps shrunk budgets consistent.
  const sim::Time horizon = std::min<sim::Time>(
      32, std::max<sim::Time>(2, instant_budget(cfg) / 4));
  c.at = 1 + rng.uniform_int(0, horizon - 2);
  c.target = static_cast<fault::CorruptTarget>(
      rng.uniform_int(0, fault::kCorruptTargetCount - 1));
  return c;
}

}  // namespace

bool is_synchronous(core::ProtocolKind kind) {
  return kind == core::ProtocolKind::sync2 ||
         kind == core::ProtocolKind::sliced ||
         kind == core::ProtocolKind::ksegment;
}

std::vector<core::ProtocolKind> equivalence_class(core::ProtocolKind kind,
                                                  std::size_t n) {
  using PK = core::ProtocolKind;
  std::vector<PK> cls;
  if (is_synchronous(kind)) {
    // Every synchronous protocol implements the same reliable channel; the
    // two-robot specialization only exists at n == 2.
    if (n == 2) cls = {PK::sync2, PK::sliced, PK::ksegment};
    else cls = {PK::sliced, PK::ksegment};
  } else {
    if (n == 2) cls = {PK::async2, PK::asyncn};
    else cls = {PK::asyncn};
  }
  // The config's own protocol leads, so callers can treat cls[0] as the
  // primary run and the rest as differential peers.
  const auto it = std::find(cls.begin(), cls.end(), kind);
  if (it != cls.end()) std::rotate(cls.begin(), it, it + 1);
  return cls;
}

std::vector<geom::Vec2> scatter(std::uint64_t seed, std::size_t n) {
  sim::Rng rng(seed ^ 0x5745);
  std::vector<geom::Vec2> pts;
  const double extent = 30.0;
  const double min_gap = 3.0;
  while (pts.size() < n) {
    const geom::Vec2 p{rng.uniform(-extent, extent),
                       rng.uniform(-extent, extent)};
    bool ok = true;
    for (const geom::Vec2& q : pts) {
      if (geom::dist(p, q) < min_gap) ok = false;
    }
    if (ok) pts.push_back(p);
  }
  return pts;
}

sim::Time instant_budget(const FuzzConfig& cfg) {
  if (cfg.max_instants != 0) return cfg.max_instants;
  // varint length (1 byte for every payload the sampler emits) + payload +
  // CRC byte, transmitted bit by bit.
  const std::uint64_t frame_bits = 8 * (cfg.payload.size() + 2);
  const auto n = static_cast<std::uint64_t>(cfg.n);
  if (is_synchronous(cfg.protocol)) {
    // Sliced rounds cost O(n) instants per bit; the constant is generous.
    return 2'000 + frame_bits * (64 * n + 64);
  }
  // Asynchronous cost divides by the scheduler's activation rate.
  double rate = 1.0;
  switch (cfg.scheduler) {
    case core::SchedulerKind::bernoulli:
      rate = std::max(cfg.p, 0.05);
      break;
    case core::SchedulerKind::centralized:
      rate = 1.0 / static_cast<double>(n);
      break;
    case core::SchedulerKind::ksubset:
      rate = static_cast<double>(std::max<std::size_t>(cfg.subset_size, 1)) /
             static_cast<double>(n);
      break;
    case core::SchedulerKind::adversarial:
      rate = 1.0;
      break;
  }
  const auto per_bit =
      static_cast<std::uint64_t>(static_cast<double>(512 * n) / rate);
  return 20'000 + frame_bits * per_bit;
}

FuzzConfig sample_config(std::uint64_t case_seed) {
  sim::Rng rng(case_seed ^ 0xf0225eedULL);
  FuzzConfig cfg;
  cfg.seed = case_seed;
  // Small swarms dominate: most schedule interleavings already show up at
  // n <= 3, and every extra robot multiplies the instant budget.
  static constexpr std::size_t kSizes[] = {2, 2, 2, 3, 3, 5};
  cfg.n = kSizes[rng.uniform_int(0, 5)];

  const bool sync = rng.flip(0.5);
  using PK = core::ProtocolKind;
  if (sync) {
    if (cfg.n == 2) {
      static constexpr PK kSync2[] = {PK::sync2, PK::sliced, PK::ksegment};
      cfg.protocol = kSync2[rng.uniform_int(0, 2)];
    } else {
      cfg.protocol = rng.flip(0.5) ? PK::sliced : PK::ksegment;
    }
  } else {
    cfg.protocol = cfg.n == 2 && rng.flip(0.5) ? PK::async2 : PK::asyncn;
  }

  using SK = core::SchedulerKind;
  static constexpr SK kScheds[] = {SK::bernoulli, SK::bernoulli,
                                   SK::centralized, SK::ksubset,
                                   SK::adversarial};
  cfg.scheduler = kScheds[rng.uniform_int(0, 4)];
  cfg.p = 0.2 + 0.15 * static_cast<double>(rng.uniform_int(0, 4));
  cfg.subset_size = 1 + rng.uniform_int(0, cfg.n - 1);
  static constexpr std::size_t kBounds[] = {2, 8, 64};
  cfg.fairness_bound = kBounds[rng.uniform_int(0, 2)];

  const std::size_t len = rng.uniform_int(0, 6);
  cfg.payload.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    cfg.payload.push_back(static_cast<std::uint8_t>(rng.uniform_int(0, 255)));
  }
  cfg.broadcast = rng.flip(0.2);
  cfg.max_instants = instant_budget(cfg);

  // Fault-masking dimension, drawn last so the base config a given seed
  // produces is unchanged from earlier corpus generations.
  if (rng.flip(0.25)) {
    cfg.group_size = rng.flip(0.3) ? 3 : 2;
    cfg.fault_plan = sample_case_fault_plan(cfg);
  } else if (rng.flip(0.15)) {
    // Arbitrary-state dimension (single-lane only, appended after the
    // masking flip so earlier corpus generations keep their configs): one
    // transient corruption of a live state machine inside the first
    // quarter of the budget, where the payload is actually in flight.
    cfg.fault_plan.corrupts = {sample_corruption(rng, cfg)};
  }
  return cfg;
}

void force_fault_dimensions(FuzzConfig& cfg) {
  cfg.group_size = 2 + (par::mix_seed(cfg.seed ^ 0x6d45) & 1);
  cfg.max_instants = 0;
  cfg.max_instants = instant_budget(cfg);
  cfg.fault_plan = sample_case_fault_plan(cfg);
}

void force_corrupt_dimensions(FuzzConfig& cfg) {
  cfg.group_size = 1;
  cfg.fault_plan = {};
  cfg.max_instants = 0;
  cfg.max_instants = instant_budget(cfg);
  sim::Rng rng(par::derive_seed(cfg.seed, 0xc024));
  cfg.fault_plan.corrupts = {sample_corruption(rng, cfg)};
}

core::ChatNetworkOptions to_options(const FuzzConfig& cfg,
                                    core::ProtocolKind kind) {
  core::ChatNetworkOptions opt;
  opt.synchrony = is_synchronous(kind) ? core::Synchrony::synchronous
                                       : core::Synchrony::asynchronous;
  opt.protocol = kind;
  opt.scheduler = cfg.scheduler;
  opt.activation_probability = cfg.p;
  opt.subset_size = cfg.subset_size;
  opt.fairness_bound = cfg.fairness_bound;
  opt.seed = cfg.seed;
  return opt;
}

std::string canonical(const FuzzConfig& cfg) {
  std::ostringstream out;
  out << "seed=" << cfg.seed
      << ";protocol=" << core::protocol_kind_name(cfg.protocol)
      << ";scheduler=" << core::scheduler_kind_name(cfg.scheduler)
      << ";p=" << cfg.p << ";subset=" << cfg.subset_size
      << ";bound=" << cfg.fairness_bound << ";n=" << cfg.n << ";payload=";
  static const char* hex = "0123456789abcdef";
  for (std::uint8_t b : cfg.payload) {
    out << hex[b >> 4] << hex[b & 0xf];
  }
  out << ";broadcast=" << (cfg.broadcast ? 1 : 0)
      << ";max_instants=" << instant_budget(cfg);
  if (cfg.fault) {
    out << ";fault=" << cfg.fault->robot << ":" << cfg.fault->nth_bit;
  }
  // Masking dimensions appear only when armed, so every pre-existing
  // config keeps its historical canonical form (and hash).
  if (cfg.group_size > 1 || !cfg.fault_plan.empty()) {
    out << ";group=" << cfg.group_size
        << ";plan=" << fault::format_fault_plan(cfg.fault_plan);
  }
  return out.str();
}

std::uint64_t config_hash(const FuzzConfig& cfg) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : canonical(cfg)) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace stig::fuzz
