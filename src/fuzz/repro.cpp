#include "fuzz/repro.hpp"

#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "obs/json.hpp"

namespace stig::fuzz {
namespace {

std::string hex64(std::uint64_t v) {
  std::ostringstream out;
  out << "0x" << std::hex << v;
  return out.str();
}

std::string payload_hex(const std::vector<std::uint8_t>& payload) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(payload.size() * 2);
  for (std::uint8_t b : payload) {
    out.push_back(digits[b >> 4]);
    out.push_back(digits[b & 0xf]);
  }
  return out;
}

std::optional<core::ProtocolKind> protocol_from_name(const std::string& s) {
  using PK = core::ProtocolKind;
  for (PK k : {PK::sync2, PK::sliced, PK::ksegment, PK::async2, PK::asyncn}) {
    if (s == core::protocol_kind_name(k)) return k;
  }
  return std::nullopt;
}

std::optional<core::SchedulerKind> scheduler_from_name(const std::string& s) {
  using SK = core::SchedulerKind;
  for (SK k : {SK::bernoulli, SK::centralized, SK::ksubset,
               SK::adversarial}) {
    if (s == core::scheduler_kind_name(k)) return k;
  }
  return std::nullopt;
}

/// Finds `"key"` at top level and returns its raw value: unescaped content
/// for strings, the bare token for everything else. The format is flat (no
/// nested objects), which keeps this scan correct.
std::optional<std::string> find_value(const std::string& text,
                                      const std::string& key) {
  const std::string needle = "\"" + key + "\"";
  std::size_t at = 0;
  while (true) {
    at = text.find(needle, at);
    if (at == std::string::npos) return std::nullopt;
    std::size_t i = at + needle.size();
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i < text.size() && text[i] == ':') break;
    ++at;  // A string value that happens to contain the needle; keep going.
  }
  std::size_t i = text.find(':', at + needle.size());
  ++i;
  while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
  if (i >= text.size()) return std::nullopt;
  if (text[i] == '"') {
    std::string out;
    for (++i; i < text.size() && text[i] != '"'; ++i) {
      char c = text[i];
      if (c == '\\' && i + 1 < text.size()) {
        const char esc = text[++i];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 'r': c = '\r'; break;
          case 't': c = '\t'; break;
          case 'u': {
            // \u00XX — the writer only emits control characters this way.
            if (i + 4 < text.size()) {
              const std::string code = text.substr(i + 1, 4);
              c = static_cast<char>(std::strtoul(code.c_str(), nullptr, 16));
              i += 4;
            }
            break;
          }
          default: c = esc; break;
        }
      }
      out.push_back(c);
    }
    return out;
  }
  std::size_t end = i;
  while (end < text.size() && text[end] != ',' && text[end] != '}' &&
         !std::isspace(static_cast<unsigned char>(text[end]))) {
    ++end;
  }
  return text.substr(i, end - i);
}

}  // namespace

void write_repro_json(std::ostream& out, const Repro& r) {
  const FuzzConfig& c = r.config;
  out << "{\n"
      << "  \"version\": 1,\n"
      << "  \"kind\": " << obs::json_quote(failure_kind_name(r.kind))
      << ",\n"
      << "  \"detail\": " << obs::json_quote(r.detail) << ",\n"
      << "  \"schedule_digest\": " << obs::json_quote(hex64(r.schedule_digest))
      << ",\n"
      << "  \"schedule_instants\": " << r.schedule_instants << ",\n"
      << "  \"config_hash\": " << obs::json_quote(hex64(config_hash(c)))
      << ",\n"
      << "  \"seed\": " << c.seed << ",\n"
      << "  \"protocol\": "
      << obs::json_quote(core::protocol_kind_name(c.protocol)) << ",\n"
      << "  \"scheduler\": "
      << obs::json_quote(core::scheduler_kind_name(c.scheduler)) << ",\n"
      << "  \"p\": " << obs::json_number(c.p) << ",\n"
      << "  \"subset_size\": " << c.subset_size << ",\n"
      << "  \"fairness_bound\": " << c.fairness_bound << ",\n"
      << "  \"n\": " << c.n << ",\n"
      << "  \"payload_hex\": " << obs::json_quote(payload_hex(c.payload))
      << ",\n"
      << "  \"broadcast\": " << (c.broadcast ? "true" : "false") << ",\n"
      << "  \"max_instants\": " << instant_budget(c) << ",\n"
      << "  \"fault_robot\": "
      << (c.fault ? static_cast<long long>(c.fault->robot) : -1LL) << ",\n"
      << "  \"fault_bit\": " << (c.fault ? c.fault->nth_bit : 0) << ",\n"
      << "  \"group_size\": " << c.group_size << ",\n"
      << "  \"fault_plan\": "
      << obs::json_quote(fault::format_fault_plan(c.fault_plan)) << "\n"
      << "}\n";
}

std::optional<std::string> save_repro(const std::string& dir, const Repro& r,
                                      std::string* error) {
  const std::string base = dir.empty() ? std::string(".") : dir;
  std::error_code ec;
  std::filesystem::create_directories(base, ec);  // Best effort; the open
                                                  // below reports failure.
  const std::string hashed =
      base + "/repro_" + hex64(config_hash(r.config)).substr(2) + ".json";
  for (const std::string& path : {hashed, base + "/repro_last.json"}) {
    std::ofstream out(path);
    if (!out) {
      if (error != nullptr) *error = "could not write " + path;
      return std::nullopt;
    }
    write_repro_json(out, r);
  }
  return hashed;
}

std::optional<Repro> load_repro(const std::string& path,
                                std::string* error) {
  const auto fail = [&](const std::string& why) -> std::optional<Repro> {
    if (error != nullptr) *error = path + ": " + why;
    return std::nullopt;
  };
  std::ifstream in(path);
  if (!in) return fail("could not open");
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  const auto u64 = [&](const std::string& key) -> std::optional<std::uint64_t> {
    const auto raw = find_value(text, key);
    if (!raw) return std::nullopt;
    return std::strtoull(raw->c_str(), nullptr, 0);  // Handles 0x too.
  };

  Repro r;
  const auto kind = find_value(text, "kind");
  if (!kind) return fail("missing kind");
  r.kind = failure_kind_from_name(*kind);
  if (const auto d = find_value(text, "detail")) r.detail = *d;
  const auto digest = u64("schedule_digest");
  if (!digest) return fail("missing schedule_digest");
  r.schedule_digest = *digest;
  if (const auto si = u64("schedule_instants")) {
    r.schedule_instants = static_cast<std::size_t>(*si);
  }

  FuzzConfig& c = r.config;
  const auto seed = u64("seed");
  if (!seed) return fail("missing seed");
  c.seed = *seed;
  const auto proto_name = find_value(text, "protocol");
  if (!proto_name) return fail("missing protocol");
  const auto proto = protocol_from_name(*proto_name);
  if (!proto) return fail("unknown protocol " + *proto_name);
  c.protocol = *proto;
  const auto sched_name = find_value(text, "scheduler");
  if (!sched_name) return fail("missing scheduler");
  const auto sched = scheduler_from_name(*sched_name);
  if (!sched) return fail("unknown scheduler " + *sched_name);
  c.scheduler = *sched;
  if (const auto p = find_value(text, "p")) {
    c.p = std::strtod(p->c_str(), nullptr);
  }
  if (const auto v = u64("subset_size")) {
    c.subset_size = static_cast<std::size_t>(*v);
  }
  if (const auto v = u64("fairness_bound")) {
    c.fairness_bound = static_cast<std::size_t>(*v);
  }
  const auto n = u64("n");
  if (!n || *n < 2) return fail("missing or bad n");
  c.n = static_cast<std::size_t>(*n);
  const auto hexstr = find_value(text, "payload_hex");
  if (!hexstr) return fail("missing payload_hex");
  if (hexstr->size() % 2 != 0) return fail("odd payload_hex length");
  c.payload.clear();
  for (std::size_t i = 0; i + 1 < hexstr->size(); i += 2) {
    const std::string byte = hexstr->substr(i, 2);
    char* end = nullptr;
    const unsigned long v = std::strtoul(byte.c_str(), &end, 16);
    if (end != byte.c_str() + 2) return fail("bad payload_hex");
    c.payload.push_back(static_cast<std::uint8_t>(v));
  }
  if (const auto b = find_value(text, "broadcast")) {
    c.broadcast = *b == "true";
  }
  if (const auto v = u64("max_instants")) c.max_instants = *v;
  const auto fault_robot = find_value(text, "fault_robot");
  if (fault_robot && *fault_robot != "-1") {
    FaultSpec f;
    f.robot = static_cast<std::size_t>(
        std::strtoull(fault_robot->c_str(), nullptr, 0));
    if (const auto bit = u64("fault_bit")) f.nth_bit = *bit;
    c.fault = f;
  }
  // Masking keys are absent from version-1 files written before the fault
  // subsystem existed; their defaults (single lane, empty plan) apply.
  if (const auto v = u64("group_size")) {
    if (*v < 1) return fail("bad group_size");
    c.group_size = static_cast<std::size_t>(*v);
  }
  if (const auto plan = find_value(text, "fault_plan")) {
    const auto parsed = fault::parse_fault_plan(*plan);
    if (!parsed) return fail("bad fault_plan \"" + *plan + "\"");
    c.fault_plan = *parsed;
  }
  return r;
}

}  // namespace stig::fuzz
