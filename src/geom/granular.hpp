// Granular discs and their slicing into labeled diameters.
//
// Section 3.2, preprocessing step 2: "each robot r computes the corresponding
// granular g_r, the largest disc of radius R_r centered on r and enclosed in
// [its Voronoi cell] c_r. Each granular is sliced into 2n slices [...] Each
// diameter is labeled from 0 to n-1, the diameter labeled by 0 being aligned
// on the North, the other are numbered in the natural order following the
// clockwise direction."
//
// The asynchronous n-robot protocol (Section 4.2) uses the same object with
// n+1 diameters, the extra one (kappa) aligned with the robot's horizon line.
// This module is agnostic to the count and the reference direction: it turns
// (diameter index, side) into points and classifies observed displacements
// back into (diameter index, side).
#pragma once

#include <cstddef>
#include <optional>

#include "geom/angle.hpp"
#include "geom/vec.hpp"

namespace stig::geom {

/// The two halves of a labeled diameter.
///
/// `positive` is the half at clockwise angle `idx * pi / m` from the
/// reference direction — the "Northern/Eastern/North-Eastern" side in the
/// paper's words, encoding bit 0. `negative` is the opposite half
/// ("Southern/Western/South-Western"), encoding bit 1.
enum class DiameterSide : unsigned char { positive, negative };

/// Flips a side.
[[nodiscard]] constexpr DiameterSide opposite(DiameterSide s) noexcept {
  return s == DiameterSide::positive ? DiameterSide::negative
                                     : DiameterSide::positive;
}

/// Result of classifying a displacement against a sliced granular.
struct SliceFix {
  std::size_t diameter = 0;    ///< Label of the nearest diameter, in [0, m).
  DiameterSide side{};         ///< Which half of that diameter.
  double distance = 0.0;       ///< Displacement magnitude.
  double angular_error = 0.0;  ///< |angle between displacement and the
                               ///< half-diameter|, in radians.
};

/// A granular disc sliced into `2 * diameter_count` slices.
///
/// Invariants: `radius > 0`, `diameter_count >= 1`, `reference` is a unit
/// vector (the direction of the positive half of diameter 0 — North for the
/// sense-of-direction protocols, the horizon direction H_r otherwise).
class Granular {
 public:
  Granular(Vec2 center, double radius, std::size_t diameter_count,
           Vec2 reference_direction) noexcept
      : center_(center),
        radius_(radius),
        count_(diameter_count),
        reference_(reference_direction.normalized()) {}

  [[nodiscard]] const Vec2& center() const noexcept { return center_; }
  [[nodiscard]] double radius() const noexcept { return radius_; }
  [[nodiscard]] std::size_t diameter_count() const noexcept { return count_; }
  [[nodiscard]] const Vec2& reference() const noexcept { return reference_; }

  /// Angular width of one slice: `pi / diameter_count`.
  [[nodiscard]] double slice_width() const noexcept {
    return kPi / static_cast<double>(count_);
  }

  /// Unit direction of the given half-diameter.
  [[nodiscard]] Vec2 direction(std::size_t diameter,
                               DiameterSide side) const noexcept {
    double angle =
        static_cast<double>(diameter) * slice_width();
    if (side == DiameterSide::negative) angle += kPi;
    return rotate_clockwise(reference_, angle);
  }

  /// Point at `distance` from the center along the given half-diameter.
  /// `distance` should stay strictly below `radius()` so the robot never
  /// leaves its granular.
  [[nodiscard]] Vec2 point_on(std::size_t diameter, DiameterSide side,
                              double distance) const noexcept {
    return center_ + direction(diameter, side) * distance;
  }

  /// Classifies the displacement `p - center()` to the nearest
  /// half-diameter. Returns nullopt when the displacement magnitude is at or
  /// below `min_distance` (the point is indistinguishable from the center).
  ///
  /// A well-formed sender moves exactly along a half-diameter, so
  /// `angular_error` of a genuine signal is ~0; observers reject fixes whose
  /// error exceeds a fraction of the slice half-width.
  [[nodiscard]] std::optional<SliceFix> classify(
      const Vec2& p, double min_distance = 16.0 * kEps) const noexcept {
    const Vec2 d = p - center_;
    const double len = d.norm();
    if (len <= min_distance) return std::nullopt;
    const double theta = clockwise_angle(reference_, d);
    const double half_width = slice_width();
    const auto total_halves = static_cast<std::size_t>(2 * count_);
    const auto nearest = static_cast<std::size_t>(
        std::llround(theta / half_width)) % total_halves;
    SliceFix fix;
    fix.diameter = nearest % count_;
    fix.side =
        nearest < count_ ? DiameterSide::positive : DiameterSide::negative;
    fix.distance = len;
    fix.angular_error =
        angular_distance(theta, static_cast<double>(nearest) * half_width);
    return fix;
  }

  /// True when `p` lies inside the granular disc (strictly, minus `eps`).
  [[nodiscard]] bool contains(const Vec2& p, double eps = kEps) const noexcept {
    return dist(p, center_) <= radius_ - eps;
  }

 private:
  Vec2 center_;
  double radius_;
  std::size_t count_;
  Vec2 reference_;
};

}  // namespace stig::geom
