#include "geom/point_grid.hpp"

#include <algorithm>
#include <cmath>

namespace stig::geom {

void PointGrid::build(std::span<const Vec2> points) {
  pts_.assign(points.begin(), points.end());
  const std::size_t n = pts_.size();
  if (n == 0) {
    starts_.assign(2, 0);
    items_.clear();
    xmin_ = ymin_ = 0.0;
    cell_ = 1.0;
    nx_ = ny_ = 1;
    return;
  }

  double xmax = pts_[0].x, ymax = pts_[0].y;
  xmin_ = pts_[0].x;
  ymin_ = pts_[0].y;
  for (const Vec2& p : pts_) {
    xmin_ = std::min(xmin_, p.x);
    ymin_ = std::min(ymin_, p.y);
    xmax = std::max(xmax, p.x);
    ymax = std::max(ymax, p.y);
  }
  // Cell side: the longer extent divided by ~sqrt(n), so the grid holds
  // O(n) cells at O(1) expected occupancy for roughly uniform sets. A
  // degenerate extent (all points coincident or collinear) collapses the
  // corresponding axis to one row; queries then degrade gracefully toward
  // the brute scan they replace.
  const double w = xmax - xmin_;
  const double h = ymax - ymin_;
  const double ext = std::max(w, h);
  const auto m = static_cast<double>(
      std::max<std::size_t>(1, static_cast<std::size_t>(std::ceil(
                                   std::sqrt(static_cast<double>(n))))));
  cell_ = ext > 0.0 ? ext / m : 1.0;
  nx_ = static_cast<std::int64_t>(w / cell_) + 1;
  ny_ = static_cast<std::int64_t>(h / cell_) + 1;

  const auto ncells = static_cast<std::size_t>(nx_ * ny_);
  starts_.assign(ncells + 1, 0);
  items_.resize(n);
  for (const Vec2& p : pts_) {
    ++starts_[static_cast<std::size_t>(cell_y(p) * nx_ + cell_x(p)) + 1];
  }
  for (std::size_t c = 0; c < ncells; ++c) starts_[c + 1] += starts_[c];
  // Stable placement: ascending index within each bucket, so tie-breaking
  // by lowest index matches a brute-force ascending scan.
  std::vector<std::size_t> cursor(starts_.begin(), starts_.end() - 1);
  for (std::size_t i = 0; i < n; ++i) {
    const Vec2& p = pts_[i];
    const auto c = static_cast<std::size_t>(cell_y(p) * nx_ + cell_x(p));
    items_[cursor[c]++] = i;
  }
}

std::pair<std::size_t, double> PointGrid::nearest_impl(
    const Vec2& q, std::size_t skip) const noexcept {
  std::size_t best = pts_.size();
  double best_d2 = std::numeric_limits<double>::infinity();
  const Cell c = cell_of(q);
  for (std::int64_t r = 0;; ++r) {
    const double lb = ring_lower_bound(r);
    if (best < pts_.size() && lb > 0.0 && lb * lb > best_d2) break;
    const bool any = for_each_in_ring(c, r, [&](std::size_t j) {
      if (j == skip) return;
      const double d2 = dist2(pts_[j], q);
      if (d2 < best_d2 || (d2 == best_d2 && j < best)) {
        best_d2 = d2;
        best = j;
      }
    });
    if (!any && r > 0) break;  // Ring left the grid: every point visited.
  }
  return {best, best_d2};
}

std::size_t PointGrid::nearest(const Vec2& q) const noexcept {
  return nearest_impl(q, pts_.size()).first;
}

double PointGrid::nearest_other_dist2(std::size_t i) const noexcept {
  return nearest_impl(pts_[i], i).second;
}

}  // namespace stig::geom
