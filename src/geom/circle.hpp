// Circles and exact small-set circumcircles — building blocks for the
// smallest-enclosing-circle computation used by the Section 3.4 naming
// scheme.
#pragma once

#include <algorithm>
#include <optional>

#include "geom/vec.hpp"

namespace stig::geom {

/// A circle given by center and (non-negative) radius.
struct Circle {
  Vec2 center;
  double radius = 0.0;

  /// True when `p` lies inside or on the circle, with slack `eps` to absorb
  /// floating-point noise (important inside Welzl's recursion).
  [[nodiscard]] bool contains(const Vec2& p, double eps = kEps) const noexcept {
    return dist2(p, center) <= (radius + eps) * (radius + eps);
  }

  /// True when `p` lies on the boundary within tolerance.
  [[nodiscard]] bool on_boundary(const Vec2& p,
                                 double eps = kEps) const noexcept {
    return nearly_equal(dist(p, center), radius, eps);
  }
};

/// Smallest circle through two points: diameter circle of [a, b].
[[nodiscard]] inline Circle circle_from(const Vec2& a, const Vec2& b) noexcept {
  return Circle{midpoint(a, b), dist(a, b) / 2.0};
}

/// Circumcircle of three points, or nullopt when they are (nearly) collinear.
///
/// Uses the standard determinant formula with coordinates translated to `a`
/// for numerical stability.
[[nodiscard]] inline std::optional<Circle> circumcircle(
    const Vec2& a, const Vec2& b, const Vec2& c) noexcept {
  const Vec2 ab = b - a;
  const Vec2 ac = c - a;
  const double d = 2.0 * cross(ab, ac);
  const double scale = std::max({1.0, ab.norm2(), ac.norm2()});
  if (std::fabs(d) <= kEps * scale) return std::nullopt;
  const double ab2 = ab.norm2();
  const double ac2 = ac.norm2();
  const Vec2 center_rel{(ac.y * ab2 - ab.y * ac2) / d,
                        (ab.x * ac2 - ac.x * ab2) / d};
  const Vec2 center = a + center_rel;
  return Circle{center, dist(center, a)};
}

}  // namespace stig::geom
