// Angle utilities with explicit handedness.
//
// The paper's constructions label granular diameters "in the natural order
// following the clockwise direction" — chirality (common handedness) is what
// lets all robots agree on that order. This header centralizes every angular
// computation so that the clockwise convention appears in exactly one place.
#pragma once

#include <cmath>
#include <numbers>

#include "geom/vec.hpp"

namespace stig::geom {

inline constexpr double kPi = std::numbers::pi;
inline constexpr double kTwoPi = 2.0 * std::numbers::pi;

/// Normalizes an angle to the half-open interval [0, 2*pi).
[[nodiscard]] inline double normalize_angle(double a) noexcept {
  a = std::fmod(a, kTwoPi);
  if (a < 0.0) a += kTwoPi;
  // fmod of a tiny negative can round to exactly kTwoPi after the add.
  if (a >= kTwoPi) a -= kTwoPi;
  return a;
}

/// Normalizes an angle to the interval (-pi, pi].
[[nodiscard]] inline double normalize_angle_signed(double a) noexcept {
  a = normalize_angle(a);
  if (a > kPi) a -= kTwoPi;
  return a;
}

/// Counterclockwise angle of vector `v` measured from the +x axis of the
/// global frame, normalized to [0, 2*pi). Precondition: `v` is non-zero.
[[nodiscard]] inline double polar_angle(const Vec2& v) noexcept {
  return normalize_angle(std::atan2(v.y, v.x));
}

/// Clockwise angle from direction `from` to direction `to`, in [0, 2*pi).
///
/// "Clockwise" is the direction a right-handed observer of the standard
/// global frame calls clockwise (negative mathematical rotation). Because
/// every robot in a chiral system shares one handedness, the simulator uses
/// this single global convention and maps per-robot mirrored frames on top
/// of it (see sim/frame.hpp).
[[nodiscard]] inline double clockwise_angle(const Vec2& from,
                                            const Vec2& to) noexcept {
  const double a = std::atan2(cross(to, from), dot(to, from));
  return normalize_angle(a);
}

/// Counterclockwise angle from direction `from` to direction `to`, [0, 2*pi).
[[nodiscard]] inline double counterclockwise_angle(const Vec2& from,
                                                   const Vec2& to) noexcept {
  return normalize_angle(kTwoPi - clockwise_angle(from, to));
}

/// Unit vector obtained by rotating unit direction `from` by `radians`
/// clockwise (global convention).
[[nodiscard]] inline Vec2 rotate_clockwise(const Vec2& from,
                                           double radians) noexcept {
  return from.rotated(-radians);
}

/// Smallest absolute angular difference between two angles, in [0, pi].
[[nodiscard]] inline double angular_distance(double a, double b) noexcept {
  const double d = std::fabs(normalize_angle_signed(a - b));
  return d;
}

}  // namespace stig::geom
