// Smallest enclosing circle (SEC).
//
// Section 3.4 of the paper anchors the anonymous-without-sense-of-direction
// naming scheme on the SEC of the initial configuration P(t0): its center O
// defines each robot's horizon line H_r, and chirality gives a common
// clockwise direction around it. The paper cites Megiddo's deterministic
// linear-time algorithm; we implement Welzl's randomized move-to-front
// algorithm, the standard practical equivalent (expected linear time), with
// a deterministic seed so that every robot — and every test run — computes
// the identical circle.
#pragma once

#include <span>
#include <vector>

#include "geom/circle.hpp"
#include "geom/vec.hpp"

namespace stig::geom {

/// Computes the smallest circle enclosing all `points`.
///
/// The result is unique (the SEC of a point set always is). An empty input
/// yields a zero circle at the origin; a single point yields a zero-radius
/// circle at that point. Expected O(n) time, O(n) scratch space.
[[nodiscard]] Circle smallest_enclosing_circle(std::span<const Vec2> points);

/// Welzl's two-boundary-points subproblem: grows the circle through `p` and
/// `q` until it encloses `pts[0..limit)` as well. `p` and `q` stay on the
/// boundary whenever the input admits it (the non-degenerate case); for
/// degenerate (collinear or duplicate) prefixes the result is still a circle
/// enclosing every input, grown monotonically — the historically buggy
/// fallback rebuilt the circle from a point pair and could *un-cover*
/// earlier prefix points. Exposed so the property/fuzz tests can drive the
/// degenerate paths directly.
[[nodiscard]] Circle circle_with_two_boundary_points(std::span<const Vec2> pts,
                                                     std::size_t limit,
                                                     const Vec2& p,
                                                     const Vec2& q);

/// Returns the indices of points lying on the SEC boundary (the support set;
/// between 1 and all-cocircular many). Useful for tests and for detecting the
/// degenerate "robot at center O" case handled by the naming scheme.
[[nodiscard]] std::vector<std::size_t> sec_support(std::span<const Vec2> points,
                                                   const Circle& sec,
                                                   double eps = 1e-7);

}  // namespace stig::geom
