#include "geom/sec.hpp"

#include <algorithm>
#include <cstdint>

namespace stig::geom {
namespace {

// Welzl's recursion flattened into the usual incremental form:
// for each point outside the current circle, recompute the circle with that
// point on the boundary, recursing over prefixes. Deterministic shuffle
// (splitmix64) keeps the expected-linear behaviour without depending on
// global random state — crucial because every robot must compute the same
// SEC and our tests must be reproducible.
std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Slack used while growing the circle; looser than kEps because the
// incremental construction accumulates a few ulps of error per level.
constexpr double kSecEps = 1e-10;

Circle circle_one_boundary(std::span<const Vec2> pts, std::size_t limit,
                           const Vec2& p) {
  Circle c{p, 0.0};
  for (std::size_t i = 0; i < limit; ++i) {
    if (!c.contains(pts[i], kSecEps)) {
      c = circle_with_two_boundary_points(pts, i, p, pts[i]);
    }
  }
  return c;
}

}  // namespace

Circle circle_with_two_boundary_points(std::span<const Vec2> pts,
                                       std::size_t limit, const Vec2& p,
                                       const Vec2& q) {
  Circle c = circle_from(p, q);
  for (std::size_t i = 0; i < limit; ++i) {
    if (!c.contains(pts[i], kSecEps)) {
      // p, q and pts[i] must all be on the boundary now.
      if (auto cc = circumcircle(p, q, pts[i])) {
        c = *cc;
      } else {
        // Degenerate triple (collinear within tolerance, or a duplicate):
        // there is no circumcircle. Grow the current circle just enough to
        // take pts[i] onto its boundary. For an exactly collinear triple
        // this *is* the farthest pair's diameter circle, and because the
        // circle only ever grows it keeps covering every earlier prefix
        // point — rebuilding from a point pair here shrank the circle and
        // could un-cover them.
        const double d = dist(pts[i], c.center);
        const Vec2 dir = (pts[i] - c.center) / d;  // d > 0: outside c.
        const double grown = (c.radius + d) / 2.0;
        c = Circle{c.center + dir * (d - c.radius) / 2.0, grown};
      }
    }
  }
  return c;
}

Circle smallest_enclosing_circle(std::span<const Vec2> points) {
  if (points.empty()) return Circle{Vec2{0.0, 0.0}, 0.0};
  std::vector<Vec2> pts(points.begin(), points.end());
  // Deterministic Fisher-Yates shuffle.
  std::uint64_t rng_state = 0x5ec5ec5ec5ec5ecULL ^ pts.size();
  for (std::size_t i = pts.size(); i > 1; --i) {
    const std::size_t j =
        static_cast<std::size_t>(splitmix64(rng_state) % i);
    std::swap(pts[i - 1], pts[j]);
  }

  Circle c{pts[0], 0.0};
  for (std::size_t i = 1; i < pts.size(); ++i) {
    if (!c.contains(pts[i], kSecEps)) {
      c = circle_one_boundary(pts, i, pts[i]);
    }
  }
  return c;
}

std::vector<std::size_t> sec_support(std::span<const Vec2> points,
                                     const Circle& sec, double eps) {
  std::vector<std::size_t> support;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (sec.on_boundary(points[i], eps)) support.push_back(i);
  }
  return support;
}

}  // namespace stig::geom
