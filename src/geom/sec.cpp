#include "geom/sec.hpp"

#include <algorithm>
#include <cstdint>

namespace stig::geom {
namespace {

// Welzl's recursion flattened into the usual incremental form:
// for each point outside the current circle, recompute the circle with that
// point on the boundary, recursing over prefixes. Deterministic shuffle
// (splitmix64) keeps the expected-linear behaviour without depending on
// global random state — crucial because every robot must compute the same
// SEC and our tests must be reproducible.
std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Slack used while growing the circle; looser than kEps because the
// incremental construction accumulates a few ulps of error per level.
constexpr double kSecEps = 1e-10;

Circle circle_two_boundary(std::span<const Vec2> pts, std::size_t limit,
                           const Vec2& p, const Vec2& q) {
  Circle c = circle_from(p, q);
  for (std::size_t i = 0; i < limit; ++i) {
    if (!c.contains(pts[i], kSecEps)) {
      // p, q and pts[i] must all be on the boundary now.
      if (auto cc = circumcircle(p, q, pts[i])) {
        c = *cc;
      } else {
        // Collinear triple: the farthest pair's diameter circle covers all.
        Circle c1 = circle_from(p, pts[i]);
        Circle c2 = circle_from(q, pts[i]);
        const Circle& best =
            c1.radius >= c2.radius ? c1 : c2;
        c = best.contains(p, kSecEps) && best.contains(q, kSecEps)
                ? best
                : circle_from(p, q);
      }
    }
  }
  return c;
}

Circle circle_one_boundary(std::span<const Vec2> pts, std::size_t limit,
                           const Vec2& p) {
  Circle c{p, 0.0};
  for (std::size_t i = 0; i < limit; ++i) {
    if (!c.contains(pts[i], kSecEps)) {
      c = circle_two_boundary(pts, i, p, pts[i]);
    }
  }
  return c;
}

}  // namespace

Circle smallest_enclosing_circle(std::span<const Vec2> points) {
  if (points.empty()) return Circle{Vec2{0.0, 0.0}, 0.0};
  std::vector<Vec2> pts(points.begin(), points.end());
  // Deterministic Fisher-Yates shuffle.
  std::uint64_t rng_state = 0x5ec5ec5ec5ec5ecULL ^ pts.size();
  for (std::size_t i = pts.size(); i > 1; --i) {
    const std::size_t j =
        static_cast<std::size_t>(splitmix64(rng_state) % i);
    std::swap(pts[i - 1], pts[j]);
  }

  Circle c{pts[0], 0.0};
  for (std::size_t i = 1; i < pts.size(); ++i) {
    if (!c.contains(pts[i], kSecEps)) {
      c = circle_one_boundary(pts, i, pts[i]);
    }
  }
  return c;
}

std::vector<std::size_t> sec_support(std::span<const Vec2> points,
                                     const Circle& sec, double eps) {
  std::vector<std::size_t> support;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (sec.on_boundary(points[i], eps)) support.push_back(i);
  }
  return support;
}

}  // namespace stig::geom
