// Planar vector/point kernel for the stigmergic-robot library.
//
// Everything in the library works in the Euclidean plane; this header
// provides the single value type `Vec2` used both for points (positions of
// robots) and for displacement vectors, plus the handful of primitive
// operations (dot, cross, rotation, normalization) the geometry and protocol
// layers are built from.
#pragma once

#include <cmath>
#include <compare>
#include <iosfwd>

namespace stig::geom {

/// Absolute tolerance used by geometric predicates throughout the library.
///
/// All robot coordinates live in O(1)..O(10^3) ranges in the simulations, and
/// slice half-widths are at least `pi / (2(n+1))`, so 1e-9 is many orders of
/// magnitude below any decision threshold a protocol relies on.
inline constexpr double kEps = 1e-9;

/// Returns true when `a` and `b` are equal up to `kEps` (absolute).
[[nodiscard]] constexpr bool nearly_equal(double a, double b,
                                          double eps = kEps) noexcept {
  const double d = a - b;
  return (d < 0 ? -d : d) <= eps;
}

/// Returns true when `a` is zero up to `kEps` (absolute).
[[nodiscard]] constexpr bool nearly_zero(double a, double eps = kEps) noexcept {
  return (a < 0 ? -a : a) <= eps;
}

/// A 2-D vector / point with `double` coordinates.
///
/// `Vec2` is a regular value type: cheap to copy, totally ordered
/// lexicographically (used by the anonymous-with-sense-of-direction naming
/// protocol, which orders robots by their coordinates), and supports the
/// usual linear-algebra operations.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  /// Lexicographic order (x first, then y). Positive uniform scaling and
  /// translation by a common vector preserve this order, which is exactly
  /// the invariance the Section 3.3 naming scheme needs.
  friend constexpr auto operator<=>(const Vec2&, const Vec2&) = default;

  constexpr Vec2& operator+=(const Vec2& o) noexcept {
    x += o.x;
    y += o.y;
    return *this;
  }
  constexpr Vec2& operator-=(const Vec2& o) noexcept {
    x -= o.x;
    y -= o.y;
    return *this;
  }
  constexpr Vec2& operator*=(double s) noexcept {
    x *= s;
    y *= s;
    return *this;
  }
  constexpr Vec2& operator/=(double s) noexcept {
    x /= s;
    y /= s;
    return *this;
  }

  friend constexpr Vec2 operator+(Vec2 a, const Vec2& b) noexcept {
    return a += b;
  }
  friend constexpr Vec2 operator-(Vec2 a, const Vec2& b) noexcept {
    return a -= b;
  }
  friend constexpr Vec2 operator*(Vec2 a, double s) noexcept { return a *= s; }
  friend constexpr Vec2 operator*(double s, Vec2 a) noexcept { return a *= s; }
  friend constexpr Vec2 operator/(Vec2 a, double s) noexcept { return a /= s; }
  friend constexpr Vec2 operator-(const Vec2& a) noexcept {
    return Vec2{-a.x, -a.y};
  }

  /// Squared Euclidean norm; preferred over `norm()` where a comparison
  /// suffices because it avoids the square root.
  [[nodiscard]] constexpr double norm2() const noexcept {
    return x * x + y * y;
  }
  /// Euclidean norm.
  [[nodiscard]] double norm() const noexcept { return std::hypot(x, y); }

  /// Unit vector in the same direction. Precondition: `norm() > 0`; a zero
  /// vector is returned unchanged (callers guard with `nearly_zero`).
  [[nodiscard]] Vec2 normalized() const noexcept {
    const double n = norm();
    return n > 0.0 ? Vec2{x / n, y / n} : *this;
  }

  /// Counterclockwise perpendicular (rotation by +90 degrees in the standard
  /// mathematical orientation of the global frame).
  [[nodiscard]] constexpr Vec2 perp_ccw() const noexcept {
    return Vec2{-y, x};
  }
  /// Clockwise perpendicular (rotation by -90 degrees).
  [[nodiscard]] constexpr Vec2 perp_cw() const noexcept { return Vec2{y, -x}; }

  /// Rotation by `radians` counterclockwise around the origin.
  [[nodiscard]] Vec2 rotated(double radians) const noexcept {
    const double c = std::cos(radians);
    const double s = std::sin(radians);
    return Vec2{c * x - s * y, s * x + c * y};
  }
};

/// Dot product.
[[nodiscard]] constexpr double dot(const Vec2& a, const Vec2& b) noexcept {
  return a.x * b.x + a.y * b.y;
}

/// 2-D cross product (z-component of the 3-D cross product). Positive when
/// `b` lies counterclockwise of `a` in the standard orientation.
[[nodiscard]] constexpr double cross(const Vec2& a, const Vec2& b) noexcept {
  return a.x * b.y - a.y * b.x;
}

/// Euclidean distance between two points.
[[nodiscard]] inline double dist(const Vec2& a, const Vec2& b) noexcept {
  return (a - b).norm();
}

/// Squared Euclidean distance between two points.
[[nodiscard]] constexpr double dist2(const Vec2& a, const Vec2& b) noexcept {
  return (a - b).norm2();
}

/// Midpoint of the segment [a, b].
[[nodiscard]] constexpr Vec2 midpoint(const Vec2& a, const Vec2& b) noexcept {
  return Vec2{(a.x + b.x) / 2.0, (a.y + b.y) / 2.0};
}

/// Componentwise approximate equality with tolerance `eps`.
[[nodiscard]] constexpr bool nearly_equal(const Vec2& a, const Vec2& b,
                                          double eps = kEps) noexcept {
  return nearly_equal(a.x, b.x, eps) && nearly_equal(a.y, b.y, eps);
}

/// Orientation predicate: sign of the signed area of triangle (a, b, c).
/// > 0: counterclockwise, < 0: clockwise, 0 (within `kEps`): collinear.
[[nodiscard]] constexpr double orient(const Vec2& a, const Vec2& b,
                                      const Vec2& c) noexcept {
  return cross(b - a, c - a);
}

std::ostream& operator<<(std::ostream& os, const Vec2& v);

}  // namespace stig::geom
