#include "geom/vec.hpp"

#include <ostream>

namespace stig::geom {

std::ostream& operator<<(std::ostream& os, const Vec2& v) {
  return os << '(' << v.x << ", " << v.y << ')';
}

}  // namespace stig::geom
