// Lines, segments and perpendicular bisectors.
#pragma once

#include <algorithm>
#include <optional>

#include "geom/vec.hpp"

namespace stig::geom {

/// An infinite directed line through `point` with (non-zero) direction `dir`.
///
/// The direction matters to the protocols: the asynchronous schemes move
/// "toward North_r" along a *directed* horizon line, and bits are coded on
/// the East/West side of the directed line.
struct Line {
  Vec2 point;
  Vec2 dir;  ///< Not required to be unit length, but must be non-zero.

  /// Constructs the directed line through `a` and `b` (direction a -> b).
  [[nodiscard]] static Line through(const Vec2& a, const Vec2& b) noexcept {
    return Line{a, b - a};
  }

  /// Signed perpendicular offset of `p`: positive when `p` is on the left
  /// (counterclockwise side) of the directed line, negative on the right,
  /// measured in Euclidean distance units.
  [[nodiscard]] double signed_offset(const Vec2& p) const noexcept {
    return cross(dir.normalized(), p - point);
  }

  /// Euclidean distance from `p` to the line.
  [[nodiscard]] double distance(const Vec2& p) const noexcept {
    return std::fabs(signed_offset(p));
  }

  /// Orthogonal projection of `p` onto the line.
  [[nodiscard]] Vec2 project(const Vec2& p) const noexcept {
    const Vec2 u = dir.normalized();
    return point + u * dot(p - point, u);
  }

  /// Parameter of the projection of `p`: `project(p) == point + t * dir_unit`.
  [[nodiscard]] double param_of(const Vec2& p) const noexcept {
    return dot(p - point, dir.normalized());
  }

  /// True when `p` lies on the line within tolerance `eps`.
  [[nodiscard]] bool contains(const Vec2& p, double eps = kEps) const noexcept {
    return distance(p) <= eps;
  }
};

/// A closed segment between two endpoints.
struct Segment {
  Vec2 a;
  Vec2 b;

  [[nodiscard]] double length() const noexcept { return dist(a, b); }

  /// Closest point of the segment to `p`.
  [[nodiscard]] Vec2 closest_point(const Vec2& p) const noexcept {
    const Vec2 d = b - a;
    const double len2 = d.norm2();
    if (len2 <= kEps * kEps) return a;
    double t = dot(p - a, d) / len2;
    if (t < 0.0) t = 0.0;
    if (t > 1.0) t = 1.0;
    return a + d * t;
  }

  /// Euclidean distance from `p` to the segment.
  [[nodiscard]] double distance(const Vec2& p) const noexcept {
    return dist(p, closest_point(p));
  }
};

/// Perpendicular bisector of the segment [a, b], directed so that `a` lies on
/// its *left* side. Precondition: `a != b`.
[[nodiscard]] inline Line perpendicular_bisector(const Vec2& a,
                                                 const Vec2& b) noexcept {
  // Direction (b - a) rotated +90deg puts `a` on the left of the line.
  return Line{midpoint(a, b), (b - a).perp_ccw()};
}

/// Intersection point of two lines, or nullopt when (nearly) parallel.
[[nodiscard]] inline std::optional<Vec2> intersect(const Line& l1,
                                                   const Line& l2) noexcept {
  const double den = cross(l1.dir, l2.dir);
  // Parallel test on the *sine* of the angle between the lines: |den| is
  // |d1||d2|sin(theta), so the threshold must carry both norms. Flooring
  // the scale at 1 (as an earlier version did) silently declared every
  // pair of short-direction lines parallel — perpendicular bisectors of
  // micro-spaced sites (|dir| ~ 1e-6, |den| ~ 1e-12) lost their clip
  // vertices and produced corrupted Voronoi cells.
  const double scale = l1.dir.norm() * l2.dir.norm();
  if (std::fabs(den) <= kEps * scale) return std::nullopt;
  const double t = cross(l2.point - l1.point, l2.dir) / den;
  return l1.point + l1.dir * t;
}

}  // namespace stig::geom
