// Convex polygons and half-plane clipping.
//
// Voronoi cells (the paper's collision-avoidance substrate, Section 3.2
// preprocessing step 1) are intersections of half-planes; we represent them
// as convex polygons obtained by Sutherland–Hodgman clipping of a large
// bounding box against each perpendicular bisector.
#pragma once

#include <span>
#include <vector>

#include "geom/line.hpp"
#include "geom/vec.hpp"

namespace stig::geom {

/// A closed half-plane: the set of points on or to the *left* of the
/// directed `boundary` line.
struct HalfPlane {
  Line boundary;

  /// True when `p` lies in the half-plane (left of, or on, the boundary).
  [[nodiscard]] bool contains(const Vec2& p, double eps = kEps) const noexcept {
    return boundary.signed_offset(p) >= -eps;
  }
};

/// Half-plane of points strictly closer to `site` than to `other`
/// (its boundary is the perpendicular bisector). Precondition: site != other.
[[nodiscard]] inline HalfPlane closer_halfplane(const Vec2& site,
                                                const Vec2& other) noexcept {
  return HalfPlane{perpendicular_bisector(site, other)};
}

/// A convex polygon stored as counterclockwise-ordered vertices.
///
/// Invariant: vertices are in counterclockwise order and the polygon is
/// convex; an empty vertex list denotes the empty polygon. The type is a
/// struct-with-invariant maintained by its factory/clip operations; callers
/// must not reorder vertices.
class ConvexPolygon {
 public:
  ConvexPolygon() = default;

  /// Builds a polygon from counterclockwise vertices. Precondition: the
  /// input really is convex and counterclockwise (asserted in debug builds).
  [[nodiscard]] static ConvexPolygon from_ccw_vertices(std::vector<Vec2> v);

  /// Axis-aligned rectangle [xmin,xmax] x [ymin,ymax].
  [[nodiscard]] static ConvexPolygon rectangle(double xmin, double ymin,
                                               double xmax, double ymax);

  [[nodiscard]] const std::vector<Vec2>& vertices() const noexcept {
    return verts_;
  }
  [[nodiscard]] bool empty() const noexcept { return verts_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return verts_.size(); }

  /// Signed area (non-negative given the CCW invariant).
  [[nodiscard]] double area() const noexcept;

  /// Centroid. Precondition: non-empty with positive area.
  [[nodiscard]] Vec2 centroid() const noexcept;

  /// True when `p` lies inside or on the polygon.
  [[nodiscard]] bool contains(const Vec2& p, double eps = kEps) const noexcept;

  /// Euclidean distance from an *interior* point `p` to the polygon
  /// boundary; this is the radius of the largest disc centered at `p`
  /// contained in the polygon (the paper's "granular" when `p` is the site
  /// of a Voronoi cell).
  [[nodiscard]] double distance_to_boundary(const Vec2& p) const noexcept;

  /// Intersection with a half-plane (Sutherland–Hodgman step).
  [[nodiscard]] ConvexPolygon clipped(const HalfPlane& hp) const;

  /// In-place `clipped`: writes the clipped vertex loop into `scratch` and
  /// swaps it in. The Voronoi hot loop clips thousands of cells; reusing
  /// the two buffers keeps the construction allocation-free in steady
  /// state. Returns true when the clip removed or moved any vertex.
  bool clip(const HalfPlane& hp, std::vector<Vec2>& scratch);

 private:
  std::vector<Vec2> verts_;
};

/// Intersection of a bounding box with a set of half-planes. The box bounds
/// unbounded cells; callers pick it large enough to contain the region of
/// interest (the engine uses the configuration's bounding box inflated by
/// the diameter).
[[nodiscard]] ConvexPolygon intersect_halfplanes(
    const ConvexPolygon& bounds, std::span<const HalfPlane> halfplanes);

/// Convex hull of a point set (Andrew's monotone chain, O(n log n)),
/// returned as a counterclockwise polygon. Collinear points interior to a
/// hull edge are dropped; duplicates collapse. Fewer than three distinct
/// points yield the degenerate polygon on those points (possibly empty).
[[nodiscard]] ConvexPolygon convex_hull(std::span<const Vec2> points);

}  // namespace stig::geom
