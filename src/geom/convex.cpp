#include "geom/convex.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

namespace stig::geom {

ConvexPolygon ConvexPolygon::from_ccw_vertices(std::vector<Vec2> v) {
#ifndef NDEBUG
  const std::size_t n = v.size();
  for (std::size_t i = 0; i + 2 < n + 2 && n >= 3; ++i) {
    const Vec2& a = v[i % n];
    const Vec2& b = v[(i + 1) % n];
    const Vec2& c = v[(i + 2) % n];
    assert(orient(a, b, c) >= -1e-6 && "vertices must be convex CCW");
  }
#endif
  ConvexPolygon p;
  p.verts_ = std::move(v);
  return p;
}

ConvexPolygon ConvexPolygon::rectangle(double xmin, double ymin, double xmax,
                                       double ymax) {
  return from_ccw_vertices({Vec2{xmin, ymin}, Vec2{xmax, ymin},
                            Vec2{xmax, ymax}, Vec2{xmin, ymax}});
}

double ConvexPolygon::area() const noexcept {
  double twice = 0.0;
  const std::size_t n = verts_.size();
  for (std::size_t i = 0; i < n; ++i) {
    twice += cross(verts_[i], verts_[(i + 1) % n]);
  }
  return twice / 2.0;
}

Vec2 ConvexPolygon::centroid() const noexcept {
  const std::size_t n = verts_.size();
  double twice_area = 0.0;
  Vec2 acc{0.0, 0.0};
  for (std::size_t i = 0; i < n; ++i) {
    const Vec2& a = verts_[i];
    const Vec2& b = verts_[(i + 1) % n];
    const double c = cross(a, b);
    twice_area += c;
    acc += (a + b) * c;
  }
  if (nearly_zero(twice_area)) {
    // Degenerate polygon: fall back to vertex average.
    Vec2 avg{0.0, 0.0};
    for (const Vec2& v : verts_) avg += v;
    return n > 0 ? avg / static_cast<double>(n) : avg;
  }
  return acc / (3.0 * twice_area);
}

bool ConvexPolygon::contains(const Vec2& p, double eps) const noexcept {
  const std::size_t n = verts_.size();
  if (n == 0) return false;
  if (n == 1) return nearly_equal(verts_[0], p, eps);
  for (std::size_t i = 0; i < n; ++i) {
    const Vec2& a = verts_[i];
    const Vec2& b = verts_[(i + 1) % n];
    const Vec2 edge = b - a;
    const double len = edge.norm();
    if (nearly_zero(len)) continue;
    // Normalize the offset so eps is in distance units regardless of edge
    // length.
    if (cross(edge, p - a) / len < -eps) return false;
  }
  return true;
}

double ConvexPolygon::distance_to_boundary(const Vec2& p) const noexcept {
  const std::size_t n = verts_.size();
  if (n == 0) return 0.0;
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < n; ++i) {
    const Segment edge{verts_[i], verts_[(i + 1) % n]};
    best = std::min(best, edge.distance(p));
  }
  return best;
}

ConvexPolygon ConvexPolygon::clipped(const HalfPlane& hp) const {
  const std::size_t n = verts_.size();
  if (n == 0) return {};
  std::vector<Vec2> out;
  out.reserve(n + 1);
  for (std::size_t i = 0; i < n; ++i) {
    const Vec2& cur = verts_[i];
    const Vec2& nxt = verts_[(i + 1) % n];
    const bool cur_in = hp.contains(cur);
    const bool nxt_in = hp.contains(nxt);
    if (cur_in) out.push_back(cur);
    if (cur_in != nxt_in) {
      // The edge crosses the boundary; intersect(edge, boundary) exists
      // because the endpoints straddle the line.
      if (auto x = intersect(Line::through(cur, nxt), hp.boundary)) {
        out.push_back(*x);
      }
    }
  }
  ConvexPolygon result;
  result.verts_ = std::move(out);
  return result;
}

bool ConvexPolygon::clip(const HalfPlane& hp, std::vector<Vec2>& scratch) {
  const std::size_t n = verts_.size();
  if (n == 0) return false;
  scratch.clear();
  scratch.reserve(n + 1);
  bool changed = false;
  for (std::size_t i = 0; i < n; ++i) {
    const Vec2& cur = verts_[i];
    const Vec2& nxt = verts_[(i + 1) % n];
    const bool cur_in = hp.contains(cur);
    const bool nxt_in = hp.contains(nxt);
    if (cur_in) {
      scratch.push_back(cur);
    } else {
      changed = true;
    }
    if (cur_in != nxt_in) {
      if (auto x = intersect(Line::through(cur, nxt), hp.boundary)) {
        scratch.push_back(*x);
      }
    }
  }
  if (!changed) return false;  // Every vertex inside: polygon unchanged.
  verts_.swap(scratch);
  return true;
}

ConvexPolygon intersect_halfplanes(const ConvexPolygon& bounds,
                                   std::span<const HalfPlane> halfplanes) {
  ConvexPolygon poly = bounds;
  for (const HalfPlane& hp : halfplanes) {
    poly = poly.clipped(hp);
    if (poly.empty()) break;
  }
  return poly;
}

ConvexPolygon convex_hull(std::span<const Vec2> points) {
  std::vector<Vec2> pts(points.begin(), points.end());
  std::sort(pts.begin(), pts.end());
  pts.erase(std::unique(pts.begin(), pts.end()), pts.end());
  const std::size_t n = pts.size();
  if (n < 3) return ConvexPolygon::from_ccw_vertices(std::move(pts));
  // Lower then upper chain; strict left turns only, so collinear interior
  // points are dropped and the CCW invariant holds exactly.
  std::vector<Vec2> hull(2 * n);
  std::size_t k = 0;
  for (std::size_t i = 0; i < n; ++i) {
    while (k >= 2 && orient(hull[k - 2], hull[k - 1], pts[i]) <= 0.0) --k;
    hull[k++] = pts[i];
  }
  for (std::size_t i = n - 1, lower = k + 1; i-- > 0;) {
    while (k >= lower && orient(hull[k - 2], hull[k - 1], pts[i]) <= 0.0) {
      --k;
    }
    hull[k++] = pts[i];
  }
  hull.resize(k - 1);  // Last point equals the first.
  return ConvexPolygon::from_ccw_vertices(std::move(hull));
}

}  // namespace stig::geom
