#include "geom/voronoi.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "geom/point_grid.hpp"

namespace stig::geom {
namespace {

struct Bounds {
  double xmin = 0.0, ymin = 0.0, xmax = 0.0, ymax = 0.0;
};

Bounds bounding(std::span<const Vec2> sites) {
  Bounds b;
  b.xmin = b.ymin = std::numeric_limits<double>::infinity();
  b.xmax = b.ymax = -std::numeric_limits<double>::infinity();
  for (const Vec2& s : sites) {
    b.xmin = std::min(b.xmin, s.x);
    b.ymin = std::min(b.ymin, s.y);
    b.xmax = std::max(b.xmax, s.x);
    b.ymax = std::max(b.ymax, s.y);
  }
  return b;
}

/// Shared margin rule. `max_nn2` is the squared distance from the most
/// isolated site to its nearest neighbour (0 when n < 2); both
/// constructions compute it as the same min/max over the same dist2
/// values, so they resolve identical margins and clip to identical boxes.
double resolve_margin(const Bounds& b, double margin, double max_nn2) {
  if (margin < 0.0) {
    const double diam = std::hypot(b.xmax - b.xmin, b.ymax - b.ymin);
    margin = std::max(diam, 1.0);
  }
  // Positive floor: half the largest nearest-neighbour distance (1 when
  // there is no neighbour). Exactly enough that every granular disc fits
  // inside the inflated box; without it a small explicit margin on a
  // (near-)collinear configuration collapses the box in one axis.
  const double floor = max_nn2 > 0.0 ? std::sqrt(max_nn2) / 2.0 : 1.0;
  return std::max(margin, floor);
}

ConvexPolygon clip_box(const Bounds& b, double margin) {
  return ConvexPolygon::rectangle(b.xmin - margin, b.ymin - margin,
                                  b.xmax + margin, b.ymax + margin);
}

/// Squared circumradius of `poly` around `site` (max dist2 to a vertex).
double circumradius2(const ConvexPolygon& poly, const Vec2& site) {
  double r2 = 0.0;
  for (const Vec2& v : poly.vertices()) r2 = std::max(r2, dist2(site, v));
  return r2;
}

}  // namespace

VoronoiDiagram VoronoiDiagram::compute_halfplane(std::span<const Vec2> sites,
                                                 double margin) {
  VoronoiDiagram vd;
  if (sites.empty()) return vd;

  const Bounds b = bounding(sites);
  double max_nn2 = 0.0;
  for (std::size_t i = 0; i < sites.size(); ++i) {
    double nn2 = std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < sites.size(); ++j) {
      if (j != i) nn2 = std::min(nn2, dist2(sites[i], sites[j]));
    }
    if (std::isfinite(nn2)) max_nn2 = std::max(max_nn2, nn2);
  }
  const ConvexPolygon box = clip_box(b, resolve_margin(b, margin, max_nn2));

  vd.cells_.reserve(sites.size());
  std::vector<HalfPlane> hps;
  hps.reserve(sites.size() - 1);
  for (std::size_t i = 0; i < sites.size(); ++i) {
    hps.clear();
    for (std::size_t j = 0; j < sites.size(); ++j) {
      if (j == i) continue;
      assert(dist2(sites[i], sites[j]) > kEps * kEps &&
             "Voronoi sites must be pairwise distinct");
      hps.push_back(closer_halfplane(sites[i], sites[j]));
    }
    VoronoiCell cell;
    cell.site_index = i;
    cell.site = sites[i];
    cell.polygon = intersect_halfplanes(box, hps);
    vd.cells_.push_back(std::move(cell));
  }
  return vd;
}

VoronoiDiagram VoronoiDiagram::compute(std::span<const Vec2> sites,
                                       double margin) {
  VoronoiDiagram vd;
  if (sites.empty()) return vd;

  const Bounds b = bounding(sites);
  const PointGrid grid(sites);
  double max_nn2 = 0.0;
  for (std::size_t i = 0; i < sites.size(); ++i) {
    const double nn2 = grid.nearest_other_dist2(i);
    assert((sites.size() < 2 || nn2 > kEps * kEps) &&
           "Voronoi sites must be pairwise distinct");
    if (std::isfinite(nn2)) max_nn2 = std::max(max_nn2, nn2);
  }
  const ConvexPolygon box = clip_box(b, resolve_margin(b, margin, max_nn2));

  vd.cells_.reserve(sites.size());
  std::vector<Vec2> clip_scratch;
  for (std::size_t i = 0; i < sites.size(); ++i) {
    const Vec2& site = sites[i];
    VoronoiCell cell;
    cell.site_index = i;
    cell.site = site;
    cell.polygon = box;
    // Security-radius construction: a site farther than 2R from `site`
    // (R = current circumradius of the cell around the site) has its
    // bisector at distance > R, which cannot intersect a polygon whose
    // vertices all lie within R. Visit candidates by expanding grid rings
    // and stop as soon as the ring lower bound certifies the rest.
    double r2 = circumradius2(cell.polygon, site);
    const PointGrid::Cell home = grid.cell_of(site);
    for (std::int64_t ring = 0;; ++ring) {
      const double lb = grid.ring_lower_bound(ring);
      if (lb > 0.0 && lb * lb > 4.0 * r2) break;
      const bool any = grid.for_each_in_ring(home, ring, [&](std::size_t j) {
        if (j == i) return;
        // Individual prune with a hair of slack so a bisector exactly
        // tangent to the circumscribed circle is still applied (it cannot
        // change the cell, but applying it keeps the clip sequence a
        // superset of the contributing bisectors).
        if (dist2(site, sites[j]) > 4.000000001 * r2) return;
        if (cell.polygon.clip(closer_halfplane(site, sites[j]),
                              clip_scratch)) {
          r2 = circumradius2(cell.polygon, site);
        }
      });
      if (!any && ring > 0) break;  // Every site visited.
    }
    vd.cells_.push_back(std::move(cell));
  }
  return vd;
}

std::size_t VoronoiDiagram::nearest_site(const Vec2& p) const noexcept {
  std::size_t best = 0;
  double best_d2 = std::numeric_limits<double>::infinity();
  for (const VoronoiCell& c : cells_) {
    const double d2 = dist2(p, c.site);
    if (d2 < best_d2) {
      best_d2 = d2;
      best = c.site_index;
    }
  }
  return best;
}

double granular_radius(std::span<const Vec2> sites, std::size_t i) noexcept {
  double best_d2 = std::numeric_limits<double>::infinity();
  for (std::size_t j = 0; j < sites.size(); ++j) {
    if (j == i) continue;
    best_d2 = std::min(best_d2, dist2(sites[i], sites[j]));
  }
  if (!std::isfinite(best_d2)) return 0.0;
  return std::sqrt(best_d2) / 2.0;
}

}  // namespace stig::geom
