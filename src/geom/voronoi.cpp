#include "geom/voronoi.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

namespace stig::geom {

VoronoiDiagram VoronoiDiagram::compute(std::span<const Vec2> sites,
                                       double margin) {
  VoronoiDiagram vd;
  if (sites.empty()) return vd;

  double xmin = std::numeric_limits<double>::infinity();
  double ymin = std::numeric_limits<double>::infinity();
  double xmax = -std::numeric_limits<double>::infinity();
  double ymax = -std::numeric_limits<double>::infinity();
  for (const Vec2& s : sites) {
    xmin = std::min(xmin, s.x);
    ymin = std::min(ymin, s.y);
    xmax = std::max(xmax, s.x);
    ymax = std::max(ymax, s.y);
  }
  if (margin < 0.0) {
    const double diam = std::hypot(xmax - xmin, ymax - ymin);
    margin = std::max(diam, 1.0);
  }
  const ConvexPolygon box = ConvexPolygon::rectangle(
      xmin - margin, ymin - margin, xmax + margin, ymax + margin);

  vd.cells_.reserve(sites.size());
  std::vector<HalfPlane> hps;
  hps.reserve(sites.size() - 1);
  for (std::size_t i = 0; i < sites.size(); ++i) {
    hps.clear();
    for (std::size_t j = 0; j < sites.size(); ++j) {
      if (j == i) continue;
      assert(dist2(sites[i], sites[j]) > kEps * kEps &&
             "Voronoi sites must be pairwise distinct");
      hps.push_back(closer_halfplane(sites[i], sites[j]));
    }
    VoronoiCell cell;
    cell.site_index = i;
    cell.site = sites[i];
    cell.polygon = intersect_halfplanes(box, hps);
    vd.cells_.push_back(std::move(cell));
  }
  return vd;
}

std::size_t VoronoiDiagram::nearest_site(const Vec2& p) const noexcept {
  std::size_t best = 0;
  double best_d2 = std::numeric_limits<double>::infinity();
  for (const VoronoiCell& c : cells_) {
    const double d2 = dist2(p, c.site);
    if (d2 < best_d2) {
      best_d2 = d2;
      best = c.site_index;
    }
  }
  return best;
}

double granular_radius(std::span<const Vec2> sites, std::size_t i) noexcept {
  double best_d2 = std::numeric_limits<double>::infinity();
  for (std::size_t j = 0; j < sites.size(); ++j) {
    if (j == i) continue;
    best_d2 = std::min(best_d2, dist2(sites[i], sites[j]));
  }
  if (!std::isfinite(best_d2)) return 0.0;
  return std::sqrt(best_d2) / 2.0;
}

}  // namespace stig::geom
