// PointGrid — uniform spatial hashing over a static planar point set.
//
// The O(n^2)-per-instant walls in the engine and the geometry substrate all
// reduce to the same primitive: "which points are near p?". A PointGrid
// buckets the points of one configuration into a uniform grid sized so the
// expected occupancy is O(1) per cell, and answers
//
//   * exact nearest-neighbour queries (`nearest`, `nearest_other_dist2`),
//   * bounded-radius visits (`for_each_within`),
//   * expanding Chebyshev-ring visits with a distance lower bound
//     (`for_each_in_ring` + `ring_lower_bound`), the driver of the
//     security-radius Voronoi construction in geom/voronoi.cpp.
//
// Exactness matters more than speed here: every nearest-neighbour answer is
// the same *double* the brute-force O(n) scan would produce (same dist2
// expression, same minimum, lowest index on ties), so grid-accelerated
// callers — granular radii, slice association, collision checks — stay
// bit-identical to their legacy loops and replay digests never move.
//
// Build is O(n) (counting sort); the structure is immutable until the next
// `build`, which reuses all capacity (no steady-state allocation).
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "geom/vec.hpp"

namespace stig::geom {

class PointGrid {
 public:
  PointGrid() = default;
  explicit PointGrid(std::span<const Vec2> points) { build(points); }

  /// (Re)builds the grid over `points`. Copies the coordinates (16 bytes a
  /// point), so the grid never dangles when the caller's buffer is reused.
  void build(std::span<const Vec2> points);

  [[nodiscard]] std::size_t size() const noexcept { return pts_.size(); }
  [[nodiscard]] bool empty() const noexcept { return pts_.empty(); }
  /// Side length of one grid cell (> 0 once built with >= 1 point).
  [[nodiscard]] double cell_size() const noexcept { return cell_; }
  [[nodiscard]] const Vec2& point(std::size_t i) const {
    return pts_[i];
  }

  /// Index of the point nearest to `q`; lowest index on exact ties (the
  /// same answer a brute-force ascending scan returns). Precondition:
  /// non-empty.
  [[nodiscard]] std::size_t nearest(const Vec2& q) const noexcept;

  /// Squared distance from point `i` to its nearest *other* point — the
  /// same double as `min_j dist2(p_i, p_j)`. Precondition: size() >= 2.
  [[nodiscard]] double nearest_other_dist2(std::size_t i) const noexcept;

  /// Calls `f(j)` for every point with dist2(point(j), q) <= radius2
  /// (including a point equal to q). Visit order is cell-major, ascending
  /// index within a cell — not globally sorted.
  template <typename F>
  void for_each_within(const Vec2& q, double radius2, F&& f) const {
    if (pts_.empty()) return;
    const std::int64_t reach =
        static_cast<std::int64_t>(std::sqrt(radius2) / cell_) + 1;
    const std::int64_t cx = cell_x(q);
    const std::int64_t cy = cell_y(q);
    const std::int64_t x0 = std::max<std::int64_t>(cx - reach, 0);
    const std::int64_t x1 = std::min<std::int64_t>(cx + reach, nx_ - 1);
    const std::int64_t y0 = std::max<std::int64_t>(cy - reach, 0);
    const std::int64_t y1 = std::min<std::int64_t>(cy + reach, ny_ - 1);
    for (std::int64_t y = y0; y <= y1; ++y) {
      for (std::int64_t x = x0; x <= x1; ++x) {
        const std::size_t c = static_cast<std::size_t>(y * nx_ + x);
        for (std::size_t k = starts_[c]; k < starts_[c + 1]; ++k) {
          const std::size_t j = items_[k];
          if (dist2(pts_[j], q) <= radius2) f(j);
        }
      }
    }
  }

  /// Grid cell of `q`, clamped into bounds.
  struct Cell {
    std::int64_t x = 0;
    std::int64_t y = 0;
  };
  [[nodiscard]] Cell cell_of(const Vec2& q) const noexcept {
    return Cell{cell_x(q), cell_y(q)};
  }

  /// Lower bound on the distance from any point of cell `c` to any point
  /// bucketed in a cell at Chebyshev ring `r` around `c` (0 for r <= 1).
  [[nodiscard]] double ring_lower_bound(std::int64_t r) const noexcept {
    return r <= 1 ? 0.0 : static_cast<double>(r - 1) * cell_;
  }

  /// Calls `f(j)` for every point bucketed in a cell at exactly Chebyshev
  /// distance `r` from `c`. Returns false when the ring lies entirely
  /// outside the grid (so an expanding search can stop).
  template <typename F>
  bool for_each_in_ring(const Cell& c, std::int64_t r, F&& f) const {
    if (pts_.empty()) return false;
    const std::int64_t x0 = c.x - r, x1 = c.x + r;
    const std::int64_t y0 = c.y - r, y1 = c.y + r;
    if (x1 < 0 || y1 < 0 || x0 >= nx_ || y0 >= ny_) return false;
    // The ring is the *boundary* of the [x0,x1]x[y0,y1] box: once the box
    // strictly contains the whole grid, every boundary cell is out of
    // bounds too. Without this test an expanding search whose distance
    // bound far exceeds the grid extent (e.g. a Voronoi clip box inflated
    // by the margin floor around a micro-spaced configuration) would spin
    // through millions of empty rings before its lower-bound cutoff fired.
    if (x0 < 0 && y0 < 0 && x1 >= nx_ && y1 >= ny_) return false;
    if (r == 0) {
      visit_cell(c.x, c.y, f);
      return true;
    }
    for (std::int64_t x = x0; x <= x1; ++x) {  // Top and bottom rows.
      visit_cell(x, y0, f);
      visit_cell(x, y1, f);
    }
    for (std::int64_t y = y0 + 1; y < y1; ++y) {  // Side columns.
      visit_cell(x0, y, f);
      visit_cell(x1, y, f);
    }
    return true;
  }

 private:
  template <typename F>
  void visit_cell(std::int64_t x, std::int64_t y, F&& f) const {
    if (x < 0 || y < 0 || x >= nx_ || y >= ny_) return;
    const std::size_t c = static_cast<std::size_t>(y * nx_ + x);
    for (std::size_t k = starts_[c]; k < starts_[c + 1]; ++k) {
      f(items_[k]);
    }
  }

  [[nodiscard]] std::int64_t cell_x(const Vec2& p) const noexcept {
    const auto x = static_cast<std::int64_t>((p.x - xmin_) / cell_);
    return x < 0 ? 0 : (x >= nx_ ? nx_ - 1 : x);
  }
  [[nodiscard]] std::int64_t cell_y(const Vec2& p) const noexcept {
    const auto y = static_cast<std::int64_t>((p.y - ymin_) / cell_);
    return y < 0 ? 0 : (y >= ny_ ? ny_ - 1 : y);
  }

  /// Expanding-ring exact nearest search; `skip` excludes one index
  /// (size() for "none"). Returns {best index, best dist2}.
  [[nodiscard]] std::pair<std::size_t, double> nearest_impl(
      const Vec2& q, std::size_t skip) const noexcept;

  std::vector<Vec2> pts_;
  std::vector<std::size_t> starts_;  ///< ncells + 1 bucket offsets.
  std::vector<std::size_t> items_;   ///< Point indices, cell-major.
  double xmin_ = 0.0, ymin_ = 0.0;
  double cell_ = 1.0;
  std::int64_t nx_ = 1, ny_ = 1;
};

}  // namespace stig::geom
