// Voronoi diagram of the robot configuration.
//
// Section 3.2, preprocessing step 1: "Each robot computes the Voronoi
// Diagram, each Voronoi cell being centered on a robot position. Every robot
// is allowed to move into its Voronoi cell only. This ensures the collision
// avoidance." We compute each cell independently as the intersection of the
// n-1 bisector half-planes with a bounding box — O(n^2) per full diagram,
// which is exactly what each simulated robot would do and is fast for the
// swarm sizes of interest (hundreds).
#pragma once

#include <span>
#include <vector>

#include "geom/convex.hpp"
#include "geom/vec.hpp"

namespace stig::geom {

/// Voronoi cell of one site, clipped to a bounding box.
struct VoronoiCell {
  std::size_t site_index = 0;  ///< Index into the site array.
  Vec2 site;                   ///< The generating point (robot position).
  ConvexPolygon polygon;       ///< Cell geometry (clipped; never empty for
                               ///< distinct sites inside the box).
};

/// A Voronoi diagram represented cell-by-cell.
///
/// Precondition for `compute`: sites are pairwise distinct (robots occupy
/// distinct points; the simulator's collision invariant guarantees this).
class VoronoiDiagram {
 public:
  /// Computes the diagram of `sites`, clipping unbounded cells to the
  /// bounding box of the sites inflated by `margin` (default: the
  /// configuration diameter, so granulars are never artificially truncated).
  [[nodiscard]] static VoronoiDiagram compute(std::span<const Vec2> sites,
                                              double margin = -1.0);

  [[nodiscard]] const std::vector<VoronoiCell>& cells() const noexcept {
    return cells_;
  }
  [[nodiscard]] const VoronoiCell& cell(std::size_t i) const {
    return cells_.at(i);
  }
  [[nodiscard]] std::size_t size() const noexcept { return cells_.size(); }

  /// Index of the site whose cell contains `p` (i.e. the nearest site).
  [[nodiscard]] std::size_t nearest_site(const Vec2& p) const noexcept;

 private:
  std::vector<VoronoiCell> cells_;
};

/// Radius of the largest disc centered at `sites[i]` and contained in the
/// Voronoi cell of `sites[i]`: half the distance to the nearest other site
/// (the nearest cell edge is the bisector to the nearest neighbour). This
/// closed form is what robots actually use; the polygon-based
/// `distance_to_boundary` is cross-checked against it in tests.
[[nodiscard]] double granular_radius(std::span<const Vec2> sites,
                                     std::size_t i) noexcept;

}  // namespace stig::geom
