// Voronoi diagram of the robot configuration.
//
// Section 3.2, preprocessing step 1: "Each robot computes the Voronoi
// Diagram, each Voronoi cell being centered on a robot position. Every robot
// is allowed to move into its Voronoi cell only. This ensures the collision
// avoidance."
//
// Two constructions share the VoronoiCell representation:
//
//   * `compute` — the default: a security-radius incremental construction
//     over a uniform PointGrid. Each cell starts from the clip box and is
//     cut only by bisectors of candidate sites taken from expanding grid
//     rings; once the next ring's distance lower bound exceeds twice the
//     cell's current circumradius R (max distance site -> cell vertex), no
//     remaining site's bisector can intersect the cell and the search
//     stops. Expected O(n) clips total for roughly uniform sites — the
//     O(n log n)-class construction ROADMAP item 1 asks for — degrading
//     toward the legacy O(n^2) on adversarial (e.g. collinear) inputs.
//   * `compute_halfplane` — the legacy per-cell intersection of all n-1
//     bisector half-planes, kept verbatim as the differential-testing
//     oracle (tests/test_voronoi_diff.cpp): both paths must produce the
//     same cells up to floating-point tolerance.
//
// Both constructions clip to the same inflated bounding box and share the
// margin rule, including the nearest-neighbour floor (see `compute`).
#pragma once

#include <span>
#include <vector>

#include "geom/convex.hpp"
#include "geom/vec.hpp"

namespace stig::geom {

/// Voronoi cell of one site, clipped to a bounding box.
struct VoronoiCell {
  std::size_t site_index = 0;  ///< Index into the site array.
  Vec2 site;                   ///< The generating point (robot position).
  ConvexPolygon polygon;       ///< Cell geometry (clipped; never empty for
                               ///< distinct sites inside the box).
};

/// A Voronoi diagram represented cell-by-cell.
///
/// Precondition for `compute`: sites are pairwise distinct (robots occupy
/// distinct points; the simulator's collision invariant guarantees this).
class VoronoiDiagram {
 public:
  /// Computes the diagram of `sites` (security-radius grid construction),
  /// clipping unbounded cells to the bounding box of the sites inflated by
  /// `margin` (default: the configuration diameter, so granulars are never
  /// artificially truncated).
  ///
  /// The effective margin is clamped to a positive floor of half the
  /// largest nearest-neighbour distance: an explicit small margin on a
  /// (near-)collinear configuration used to collapse the box to a
  /// zero-height strip and truncate every cell below its granular; the
  /// floor is exactly the inflation that keeps each site's granular disc
  /// (radius = half its nearest-neighbour distance) inside the box.
  [[nodiscard]] static VoronoiDiagram compute(std::span<const Vec2> sites,
                                              double margin = -1.0);

  /// The legacy construction: every cell is the intersection of all n-1
  /// bisector half-planes with the same clip box `compute` uses (same
  /// margin rule, same floor). O(n^2) clips; retained as the differential
  /// oracle for `compute`.
  [[nodiscard]] static VoronoiDiagram compute_halfplane(
      std::span<const Vec2> sites, double margin = -1.0);

  [[nodiscard]] const std::vector<VoronoiCell>& cells() const noexcept {
    return cells_;
  }
  [[nodiscard]] const VoronoiCell& cell(std::size_t i) const {
    return cells_.at(i);
  }
  [[nodiscard]] std::size_t size() const noexcept { return cells_.size(); }

  /// Index of the site whose cell contains `p` (i.e. the nearest site).
  [[nodiscard]] std::size_t nearest_site(const Vec2& p) const noexcept;

 private:
  std::vector<VoronoiCell> cells_;
};

/// Radius of the largest disc centered at `sites[i]` and contained in the
/// Voronoi cell of `sites[i]`: half the distance to the nearest other site
/// (the nearest cell edge is the bisector to the nearest neighbour). This
/// closed form is what robots actually use; the polygon-based
/// `distance_to_boundary` is cross-checked against it in tests.
[[nodiscard]] double granular_radius(std::span<const Vec2> sites,
                                     std::size_t i) noexcept;

}  // namespace stig::geom
