#include "geom/geom_cache.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "geom/point_grid.hpp"
#include "geom/sec.hpp"

namespace stig::geom {

std::uint64_t configuration_hash(std::span<const Vec2> points) noexcept {
  // FNV-1a over the coordinate bytes. Doubles hash by representation —
  // exactly right here, since an epoch ends on *any* observable position
  // change. Seed with the count so prefixes of a configuration differ.
  std::uint64_t h = 0xcbf29ce484222325ULL ^ points.size();
  for (const Vec2& p : points) {
    unsigned char bytes[2 * sizeof(double)];
    std::memcpy(bytes, &p.x, sizeof(double));
    std::memcpy(bytes + sizeof(double), &p.y, sizeof(double));
    for (unsigned char b : bytes) {
      h ^= b;
      h *= 0x100000001b3ULL;
    }
  }
  return h;
}

GeomCache& GeomCache::local() {
  thread_local GeomCache cache;
  return cache;
}

GeomCache::Entry& GeomCache::entry_for(std::span<const Vec2> points) {
  const std::uint64_t key = configuration_hash(points);
  for (const std::unique_ptr<Entry>& e : entries_) {
    if (e->key == key && e->points.size() == points.size() &&
        std::equal(e->points.begin(), e->points.end(), points.begin())) {
      e->last_used = ++clock_;
      ++hits_;
      return *e;
    }
  }
  ++misses_;
  if (entries_.size() >= kCapacity) {
    auto lru = std::min_element(
        entries_.begin(), entries_.end(),
        [](const std::unique_ptr<Entry>& a, const std::unique_ptr<Entry>& b) {
          return a->last_used < b->last_used;
        });
    entries_.erase(lru);
  }
  auto e = std::make_unique<Entry>();
  e->key = key;
  e->points.assign(points.begin(), points.end());
  e->last_used = ++clock_;
  entries_.push_back(std::move(e));
  return *entries_.back();
}

const Circle& GeomCache::sec(std::span<const Vec2> points) {
  Entry& e = entry_for(points);
  if (!e.sec) e.sec = smallest_enclosing_circle(e.points);
  return *e.sec;
}

const VoronoiDiagram& GeomCache::voronoi(std::span<const Vec2> points) {
  Entry& e = entry_for(points);
  if (!e.voronoi) e.voronoi = VoronoiDiagram::compute(e.points);
  return *e.voronoi;
}

const ConvexPolygon& GeomCache::hull(std::span<const Vec2> points) {
  Entry& e = entry_for(points);
  if (!e.hull) e.hull = convex_hull(e.points);
  return *e.hull;
}

const std::vector<double>& GeomCache::granular_radii(
    std::span<const Vec2> points) {
  Entry& e = entry_for(points);
  if (!e.radii) {
    std::vector<double> radii;
    radii.reserve(e.points.size());
    if (e.points.size() >= 64) {
      // One O(n) grid instead of n brute nearest-neighbour scans. Each
      // radius is sqrt of the same squared distance the closed form
      // minimizes, halved — bit-identical to granular_radius.
      const PointGrid grid(e.points);
      for (std::size_t i = 0; i < e.points.size(); ++i) {
        radii.push_back(std::sqrt(grid.nearest_other_dist2(i)) / 2.0);
      }
    } else {
      for (std::size_t i = 0; i < e.points.size(); ++i) {
        radii.push_back(granular_radius(e.points, i));
      }
    }
    e.radii = std::move(radii);
  }
  return *e.radii;
}

void GeomCache::clear() { entries_.clear(); }

}  // namespace stig::geom
