// GeomCache — configuration-epoch memoization of the geometry substrate.
//
// The protocols recompute the same geometry of the same point set over and
// over: every robot's SlicedCore runs the SEC-based relative naming against
// the identical t0 configuration (n robots x n labelings x 2 SEC calls
// before this cache), the watchdog and the conformance validator rebuild
// the same granular radii, and the viz layer recomputes the Voronoi diagram
// a figure at a time. All of these are pure functions of the point set, so
// one memo entry per *configuration epoch* — the interval during which no
// robot has moved — collapses them to a single computation.
//
// Keying and invalidation: an entry is keyed by the FNV-1a hash of the raw
// coordinate bytes, guarded by an exact point-by-point comparison (a hash
// collision can cost a recompute, never a wrong answer). Any robot moving
// changes the coordinates, hence the key, hence the epoch — there is no
// explicit invalidate call to forget. The cache keeps the most recent
// `kCapacity` configurations (LRU) so long fuzz/soak batches that stream
// thousands of distinct configurations hold memory constant.
//
// Concurrency: the cache is thread-local (`GeomCache::local()`). Parallel
// batch tasks each warm their own worker's cache — no shared mutable state,
// no locks on the geometry hot path, nothing for ThreadSanitizer to flag —
// and because every cached value is bit-identical to the direct
// computation it memoizes, hits vs misses can never make two runs of the
// same case differ (the property test_geom_cache.cpp pins).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "geom/circle.hpp"
#include "geom/convex.hpp"
#include "geom/vec.hpp"
#include "geom/voronoi.hpp"

namespace stig::geom {

class GeomCache {
 public:
  /// Entries retained per thread; beyond this the least recently used
  /// configuration is evicted. A running simulation needs exactly one (its
  /// t0 configuration); the differential oracle's protocol siblings and
  /// shrink candidates need a handful.
  static constexpr std::size_t kCapacity = 8;

  /// The calling thread's cache. Protocol construction, the watchdog and
  /// the validators all share it, which is what makes the n-robots-build-
  /// n-SlicedCores pattern O(1) geometry instead of O(n).
  [[nodiscard]] static GeomCache& local();

  /// Smallest enclosing circle of `points`, memoized.
  [[nodiscard]] const Circle& sec(std::span<const Vec2> points);

  /// Voronoi diagram of `points` with the default margin, memoized.
  [[nodiscard]] const VoronoiDiagram& voronoi(std::span<const Vec2> points);

  /// Convex hull of `points`, memoized.
  [[nodiscard]] const ConvexPolygon& hull(std::span<const Vec2> points);

  /// All granular radii of `points` (granular_radius for every index),
  /// memoized. One O(n^2) pass serves every robot's O(n) query.
  [[nodiscard]] const std::vector<double>& granular_radii(
      std::span<const Vec2> points);

  /// Evicts everything (hit/miss counters survive; tests reset via fresh
  /// instances).
  void clear();

  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

 private:
  struct Entry {
    std::uint64_t key = 0;
    std::vector<Vec2> points;  ///< Exact-compare guard against collisions.
    std::uint64_t last_used = 0;
    // Values are computed lazily: an entry created for the SEC does not
    // pay for the Voronoi diagram until someone asks.
    std::optional<Circle> sec;
    std::optional<VoronoiDiagram> voronoi;
    std::optional<ConvexPolygon> hull;
    std::optional<std::vector<double>> radii;
  };

  /// Finds or creates (evicting LRU) the entry for `points`.
  Entry& entry_for(std::span<const Vec2> points);

  // unique_ptr for address stability: cached values hand out references
  // that must survive unrelated insertions and evictions.
  std::vector<std::unique_ptr<Entry>> entries_;
  std::uint64_t clock_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// FNV-1a over the raw coordinate bytes of `points` — the configuration
/// epoch key. Exposed for tests and for consumers that want to tag results
/// with the configuration they came from.
[[nodiscard]] std::uint64_t configuration_hash(std::span<const Vec2> points)
    noexcept;

// Convenience wrappers over the calling thread's cache. Results stay valid
// until the configuration is evicted (kCapacity distinct configurations
// later) — copy out before streaming unrelated configurations through.
[[nodiscard]] inline const Circle& cached_sec(std::span<const Vec2> points) {
  return GeomCache::local().sec(points);
}
[[nodiscard]] inline const VoronoiDiagram& cached_voronoi(
    std::span<const Vec2> points) {
  return GeomCache::local().voronoi(points);
}
[[nodiscard]] inline const ConvexPolygon& cached_hull(
    std::span<const Vec2> points) {
  return GeomCache::local().hull(points);
}
/// Cached granular_radius(points, i).
[[nodiscard]] inline double cached_granular_radius(
    std::span<const Vec2> points, std::size_t i) {
  return GeomCache::local().granular_radii(points).at(i);
}

}  // namespace stig::geom
