#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "obs/jsonl_sink.hpp"

namespace stig::obs {
namespace {

// Crash-handler registration (single slot, process-wide).
FlightRecorder* g_crash_recorder = nullptr;
std::string g_crash_path;
constexpr int kCrashSignals[] = {SIGSEGV, SIGBUS, SIGFPE, SIGABRT};

void crash_handler(int sig) {
  // Re-arm the default action first so a second fault terminates.
  for (const int s : kCrashSignals) std::signal(s, SIG_DFL);
  if (g_crash_recorder != nullptr && !g_crash_path.empty()) {
    // Best-effort: stdio + the recorder's heap snapshot. A flight recorder
    // that usually survives beats none; fully async-signal-safe formatting
    // of doubles is not worth its complexity here.
    std::FILE* f = std::fopen(g_crash_path.c_str(), "w");
    if (f != nullptr) {
      std::fprintf(f,
                   "{\"type\":\"flight_recorder\",\"signal\":%d,"
                   "\"capacity\":%zu,\"seen\":%llu}\n",
                   sig, g_crash_recorder->capacity(),
                   static_cast<unsigned long long>(
                       g_crash_recorder->total_seen()));
      for (const Event& e : g_crash_recorder->snapshot()) {
        const std::string line = JsonlEventSink::to_json(e);
        std::fwrite(line.data(), 1, line.size(), f);
        std::fputc('\n', f);
      }
      std::fclose(f);
    }
  }
  std::raise(sig);
}

}  // namespace

FlightRecorder::FlightRecorder(std::size_t capacity)
    : ring_(capacity == 0 ? 1 : capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("FlightRecorder: capacity must be >= 1");
  }
}

FlightRecorder::~FlightRecorder() {
  if (g_crash_recorder == this) uninstall_crash_handler();
}

void FlightRecorder::on_event(const Event& e) {
  ring_[seen_ % ring_.size()] = e;
  ++seen_;
}

std::size_t FlightRecorder::size() const noexcept {
  return static_cast<std::size_t>(
      std::min<std::uint64_t>(seen_, ring_.size()));
}

std::vector<Event> FlightRecorder::snapshot() const {
  std::vector<Event> out;
  const std::size_t held = size();
  out.reserve(held);
  const std::uint64_t first = seen_ - held;
  for (std::uint64_t i = first; i < seen_; ++i) {
    out.push_back(ring_[i % ring_.size()]);
  }
  return out;
}

void FlightRecorder::dump(std::ostream& out) const {
  out << "{\"type\":\"flight_recorder\",\"capacity\":" << ring_.size()
      << ",\"seen\":" << seen_
      << ",\"dropped\":" << seen_ - size() << "}\n";
  for (const Event& e : snapshot()) {
    out << JsonlEventSink::to_json(e) << '\n';
  }
}

bool FlightRecorder::dump_to_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  dump(out);
  return static_cast<bool>(out);
}

void FlightRecorder::install_crash_handler(FlightRecorder* recorder,
                                           std::string path) {
  g_crash_recorder = recorder;
  g_crash_path = std::move(path);
  for (const int s : kCrashSignals) std::signal(s, &crash_handler);
}

void FlightRecorder::uninstall_crash_handler() {
  g_crash_recorder = nullptr;
  g_crash_path.clear();
  for (const int s : kCrashSignals) std::signal(s, SIG_DFL);
}

}  // namespace stig::obs
