#include "obs/jsonl_sink.hpp"

#include "obs/json.hpp"

namespace stig::obs {
namespace {

/// Which optional fields a given event type carries in its JSONL record.
struct FieldMask {
  bool robot = false, peer = false, aux = false, pos = false, value = false,
       bit = false;
};

FieldMask mask_for(EventType t) {
  switch (t) {
    case EventType::Activation:
      return {.robot = true, .pos = true};
    case EventType::Move:
      return {.robot = true, .pos = true, .value = true};
    case EventType::Collision:
      return {.robot = true, .peer = true, .pos = true};
    case EventType::PhaseEnter:
      return {.robot = true};
    case EventType::BitEmitted:
      return {.robot = true, .peer = true, .bit = true};
    case EventType::BitDecoded:
      return {.robot = true, .peer = true, .aux = true, .bit = true};
    case EventType::FrameDelivered:
      return {.robot = true, .peer = true, .aux = true, .value = true};
    case EventType::AckObserved:
      return {.robot = true, .peer = true, .value = true};
    case EventType::Teleport:
      return {.robot = true, .pos = true};
    case EventType::StepComplete:
      return {.value = true};
    case EventType::FaultInjected:
      return {.robot = true, .value = true};
    case EventType::Retransmit:
      return {.robot = true, .peer = true, .aux = true, .value = true};
    case EventType::MaskedDelivery:
      return {.robot = true, .peer = true, .aux = true, .value = true,
              .bit = true};
  }
  return {};
}

}  // namespace

JsonlEventSink::JsonlEventSink(std::unique_ptr<std::ofstream> owned)
    : owned_(std::move(owned)), out_(owned_.get()) {}

std::unique_ptr<JsonlEventSink> JsonlEventSink::open(
    const std::string& path) {
  auto file = std::make_unique<std::ofstream>(path);
  if (!*file) return nullptr;
  return std::unique_ptr<JsonlEventSink>(
      new JsonlEventSink(std::move(file)));
}

std::string JsonlEventSink::to_json(const Event& e) {
  const FieldMask m = mask_for(e.type);
  std::string line = "{\"type\":";
  line += json_quote(event_type_name(e.type));
  line += ",\"t\":";
  line += std::to_string(e.t);
  if (m.robot) line += ",\"robot\":" + std::to_string(e.robot);
  if (m.peer && e.peer >= 0) line += ",\"peer\":" + std::to_string(e.peer);
  if (m.aux && e.aux >= 0) line += ",\"aux\":" + std::to_string(e.aux);
  if (m.pos) {
    line += ",\"x\":" + json_number(e.x);
    line += ",\"y\":" + json_number(e.y);
  }
  if (m.value) line += ",\"value\":" + json_number(e.value);
  if (m.bit) line += ",\"bit\":" + std::to_string(e.bit);
  if (e.label != nullptr) {
    line += ",\"label\":";
    line += json_quote(e.label);
  }
  line += '}';
  return line;
}

void JsonlEventSink::on_event(const Event& e) {
  *out_ << to_json(e) << '\n';
}

void JsonlEventSink::flush() { out_->flush(); }

}  // namespace stig::obs
