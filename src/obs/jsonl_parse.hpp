// EventLog — reads a JSONL event log back into typed events.
//
// The inverse of JsonlEventSink for the fixed, flat schema it writes:
// every line is one object with a known key set (type, t, robot, peer,
// aux, x, y, value, bit, label). Parsed `Event::label` pointers reference
// strings interned inside the EventLog, so the log must outlive the
// events. This is what lets `stigreport` and the span/watchdog tests
// analyze a recorded run exactly as if it were live.
#pragma once

#include <istream>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "obs/event.hpp"

namespace stig::obs {

class EventLog {
 public:
  /// Parses one JSONL line; nullopt on malformed input or unknown type.
  /// Lines whose `type` is not an event type (e.g. a flight_recorder
  /// header) also return nullopt.
  [[nodiscard]] std::optional<Event> parse_line(std::string_view line);

  /// Reads every line of `in`, appending parsed events; returns the number
  /// of lines that failed to parse (header lines included).
  std::size_t read(std::istream& in);

  [[nodiscard]] const std::vector<Event>& events() const noexcept {
    return events_;
  }
  void clear() { events_.clear(); }

 private:
  [[nodiscard]] const char* intern(std::string_view s);

  std::set<std::string, std::less<>> labels_;  ///< Stable label storage.
  std::vector<Event> events_;
};

}  // namespace stig::obs
