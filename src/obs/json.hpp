// Minimal JSON emission helpers shared by the obs exporters.
//
// Deliberately tiny: quote-and-escape for strings, finite formatting for
// doubles (JSON has no Infinity/NaN — they render as null). Not a parser.
#pragma once

#include <cmath>
#include <cstdio>
#include <string>
#include <string_view>

namespace stig::obs {

/// Returns `s` as a double-quoted JSON string literal.
[[nodiscard]] inline std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

/// Formats `v` as a JSON number: shortest round-trip-safe decimal, integral
/// values without a trailing ".0"-less exponent surprise; non-finite values
/// become null.
[[nodiscard]] inline std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Prefer the shorter %g form when it round-trips.
  char short_buf[32];
  std::snprintf(short_buf, sizeof(short_buf), "%.9g", v);
  double back = 0.0;
  std::sscanf(short_buf, "%lf", &back);
  return back == v ? short_buf : buf;
}

}  // namespace stig::obs
