// Typed telemetry events.
//
// A run of the simulator is, observably, a sequence of movement-signals:
// activations, moves, protocol phase changes, bits leaving and entering
// robots, frames completing, acknowledgments. Each of those is an `Event` —
// a small POD record stamped with the simulated instant — emitted by the
// engine, the protocol drivers and the chat network into an `EventSink`
// (see sink.hpp). Exporters turn the stream into JSONL, Chrome trace JSON
// or aggregate metrics; the built-in `sim::Trace` consumes the same stream.
//
// This header deliberately depends on nothing above the standard library so
// every layer (sim, proto, core, tools, bench) can emit events without
// dependency cycles.
#pragma once

#include <cstdint>

namespace stig::obs {

/// What happened. Names match the JSONL `type` field (snake_cased there).
enum class EventType : unsigned char {
  Activation,      ///< The scheduler activated `robot` (x,y = position).
  Move,            ///< `robot` changed position this instant (x,y = after,
                   ///< value = distance traveled).
  Collision,       ///< `robot` and `peer` violated the separation invariant
                   ///< (x,y = robot's position; the engine throws after).
  PhaseEnter,      ///< `robot`'s protocol entered phase `label`.
  BitEmitted,      ///< `robot` completed signaling one bit (`bit`) toward
                   ///< `peer` (-1 and label="broadcast" for one-to-all).
  BitDecoded,      ///< `robot` decoded `bit` from sender `peer`, addressed
                   ///< to `aux`.
  FrameDelivered,  ///< A full frame from `peer` addressed to `aux` finished
                   ///< reassembly at `robot` (value = payload bytes; label
                   ///< is "inbox", "overheard" or "broadcast").
  AckObserved,     ///< `robot` observed the Lemma 4.1 implicit ack from
                   ///< `peer` (-1 = every peer); value = instants since the
                   ///< ack window was armed.
  Teleport,        ///< Fault injection moved `robot` to (x,y).
  StepComplete,    ///< Instant `t` finished (value = min pairwise
                   ///< separation of the new configuration).
  FaultInjected,   ///< The fault plan fired on `robot` (label = fault kind:
                   ///< "crash", "stall", "jitter", "burst" or
                   ///< "corrupt_<target>"; value = the fault's magnitude —
                   ///< stall length, jitter distance, burst width or a
                   ///< digest of the corruption garbage; 0 for crash).
  Retransmit,      ///< The reliable message layer re-sent message `aux`
                   ///< from `robot` to `peer` (value = attempt number;
                   ///< label = "retry" or "backup" once degraded to the
                   ///< backup channel).
  MaskedDelivery,  ///< The redundancy layer voted a delivery for logical
                   ///< `robot` from logical `peer` (aux = delivery ordinal
                   ///< on that stream; bit = FNV-1a-32 payload hash;
                   ///< value = agreeing lanes; label = "broadcast" for
                   ///< one-to-all, "unicast" otherwise).
};

/// Number of distinct event types (for per-type counters).
inline constexpr unsigned kEventTypeCount =
    static_cast<unsigned>(EventType::MaskedDelivery) + 1;

/// One telemetry record. Fields not meaningful for a given type keep their
/// defaults; `label`, when set, must point at storage outliving the run
/// (string literals in practice).
struct Event {
  EventType type{};
  std::uint64_t t = 0;      ///< Simulated instant.
  std::int64_t robot = -1;  ///< Primary robot (simulator index).
  std::int64_t peer = -1;   ///< Counterpart robot, -1 when none/all.
  std::int64_t aux = -1;    ///< Secondary robot (e.g. frame addressee).
  double x = 0.0;           ///< Position payload (global frame).
  double y = 0.0;
  double value = 0.0;       ///< Distance / latency / size / separation.
  std::uint32_t bit = 0;    ///< Bit value for Bit* events.
  const char* label = nullptr;  ///< Phase name or annotation.
};

/// Stable snake_case name used by every exporter.
[[nodiscard]] constexpr const char* event_type_name(EventType t) {
  switch (t) {
    case EventType::Activation: return "activation";
    case EventType::Move: return "move";
    case EventType::Collision: return "collision";
    case EventType::PhaseEnter: return "phase_enter";
    case EventType::BitEmitted: return "bit_emitted";
    case EventType::BitDecoded: return "bit_decoded";
    case EventType::FrameDelivered: return "frame_delivered";
    case EventType::AckObserved: return "ack_observed";
    case EventType::Teleport: return "teleport";
    case EventType::StepComplete: return "step_complete";
    case EventType::FaultInjected: return "fault_injected";
    case EventType::Retransmit: return "retransmit";
    case EventType::MaskedDelivery: return "masked_delivery";
  }
  return "unknown";
}

}  // namespace stig::obs
