// Metric-key gating convention.
//
// Every machine-readable artifact in the repo (BENCH_*.json, PERF_*.json,
// MetricsRegistry exports) mixes two kinds of values:
//
//  * deterministic keys — counts, ratios and sizes that are a pure function
//    of (code, seed): instants, allocs_per_instant, events_per_instant,
//    peak_bytes, instants_per_bit. These are regression-GATED: stigreport
//    compares them against committed baselines and fails the build on
//    drift.
//
//  * informational keys — machine-speed numbers that move with the
//    hardware, the load and the clock: wall times, nanoseconds, cycle
//    counts, throughputs and percentages derived from them. These are
//    recorded (they are the cost model the repo is growing toward) but
//    never gated.
//
// The convention is purely name-based so that every producer and consumer
// agrees without a schema: a key is informational iff it contains one of
// the markers below — "wall", "cycles", "_per_sec", "_pct" or "_ns".
// Anything else is gated. New speed-dependent keys MUST pick a name with
// one of these markers (prefer the "_ns" / "_cycles" suffixes); new
// deterministic keys must avoid them.
//
// Shared by `stigreport diff`, `stigreport perf` and the stigperf driver;
// unit-tested in tests/test_obs_metrics.cpp.
#pragma once

#include <string_view>

namespace stig::obs {

/// How a metric key participates in regression gating.
enum class MetricKeyClass : unsigned char {
  gated,          ///< Deterministic; compared against baselines.
  informational,  ///< Machine-speed; recorded but never compared.
};

/// Classifies `key` per the documented marker convention.
[[nodiscard]] inline MetricKeyClass metric_key_class(
    std::string_view key) noexcept {
  for (const std::string_view marker :
       {std::string_view("wall"), std::string_view("cycles"),
        std::string_view("_per_sec"), std::string_view("_pct"),
        std::string_view("_ns")}) {
    if (key.find(marker) != std::string_view::npos) {
      return MetricKeyClass::informational;
    }
  }
  return MetricKeyClass::gated;
}

/// True when `key` is machine-speed dependent and must never gate.
[[nodiscard]] inline bool is_informational_key(std::string_view key) noexcept {
  return metric_key_class(key) == MetricKeyClass::informational;
}

}  // namespace stig::obs
