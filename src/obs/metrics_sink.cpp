#include "obs/metrics_sink.hpp"

#include <string>

namespace stig::obs {

MetricsSink::MetricsSink(MetricsRegistry& registry)
    : registry_(&registry),
      ack_latency_(&registry.histogram("chat.ack_latency", 1.0)),
      move_distance_(&registry.histogram("motion.move_distance", 1e-6)),
      min_separation_(&registry.gauge("motion.min_separation")),
      instants_(&registry.counter("run.instants")) {
  for (unsigned k = 0; k < kEventTypeCount; ++k) {
    type_counters_[k] = &registry.counter(
        std::string("events.") +
        event_type_name(static_cast<EventType>(k)));
  }
}

void MetricsSink::on_event(const Event& e) {
  type_counters_[static_cast<unsigned>(e.type)]->add();
  switch (e.type) {
    case EventType::AckObserved:
      ack_latency_->record(e.value);
      break;
    case EventType::Move:
      move_distance_->record(e.value);
      break;
    case EventType::StepComplete:
      min_separation_->set(e.value);
      instants_->add();
      break;
    default:
      break;
  }
}

}  // namespace stig::obs
