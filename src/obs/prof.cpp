#include "obs/prof.hpp"

#include <chrono>
#include <cstring>
#include <stdexcept>
#include <string>

#include "obs/metrics.hpp"

namespace stig::obs::prof {

std::uint64_t Profiler::now_cycles() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_ia32_rdtsc();
#elif defined(__aarch64__)
  std::uint64_t v = 0;
  asm volatile("mrs %0, cntvct_el0" : "=r"(v));
  return v;
#else
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

double Profiler::cycles_per_ns() {
#if defined(__x86_64__) || defined(__i386__) || defined(__aarch64__)
  // One ~2ms spin per process; every publish reuses the result.
  static const double rate = [] {
    using Clock = std::chrono::steady_clock;
    const std::uint64_t c0 = now_cycles();
    const Clock::time_point t0 = Clock::now();
    Clock::time_point t1 = t0;
    while (std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
               .count() < 2000) {
      t1 = Clock::now();
    }
    const std::uint64_t c1 = now_cycles();
    const double ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count());
    return ns > 0.0 ? static_cast<double>(c1 - c0) / ns : 1.0;
  }();
  return rate;
#else
  return 1.0;  // now_cycles already returns nanoseconds.
#endif
}

PhaseId Profiler::phase(const char* name) {
  for (std::size_t i = 0; i < phases_; ++i) {
    if (std::strcmp(names_[i], name) == 0) return static_cast<PhaseId>(i);
  }
  if (phases_ >= kMaxPhases) {
    throw std::length_error("Profiler: phase table full");
  }
  names_[phases_] = name;
  return static_cast<PhaseId>(phases_++);
}

void Profiler::enter(PhaseId id) noexcept {
  if (depth_ >= kMaxDepth || id >= phases_) {
    ++dropped_;
    return;
  }
  Frame& f = stack_[depth_++];
  f.id = id;
  f.child_cycles = f.child_allocs = f.child_bytes = 0;
  const alloc::Counters a = alloc::snapshot();
  f.start_allocs = a.allocs;
  f.start_bytes = a.bytes;
  f.start_cycles = now_cycles();  // Last: exclude our own bookkeeping.
}

void Profiler::exit() noexcept {
  if (dropped_ > 0) {
    --dropped_;
    return;
  }
  if (depth_ == 0) return;  // Unbalanced exit; ignore.
  const std::uint64_t end_cycles = now_cycles();
  const alloc::Counters a = alloc::snapshot();
  const Frame& f = stack_[--depth_];
  const std::uint64_t incl_cycles = end_cycles - f.start_cycles;
  const std::uint64_t incl_allocs = a.allocs - f.start_allocs;
  const std::uint64_t incl_bytes = a.bytes - f.start_bytes;
  Agg& g = agg_[f.id];
  ++g.calls;
  g.total_cycles += incl_cycles;
  g.self_cycles += incl_cycles - f.child_cycles;
  g.total_allocs += incl_allocs;
  g.self_allocs += incl_allocs - f.child_allocs;
  g.total_bytes += incl_bytes;
  g.self_bytes += incl_bytes - f.child_bytes;
  if (depth_ > 0) {
    Frame& parent = stack_[depth_ - 1];
    parent.child_cycles += incl_cycles;
    parent.child_allocs += incl_allocs;
    parent.child_bytes += incl_bytes;
  }
}

std::vector<PhaseStats> Profiler::stats() const {
  std::vector<PhaseStats> out;
  out.reserve(phases_);
  for (std::size_t i = 0; i < phases_; ++i) {
    PhaseStats s;
    s.name = names_[i];
    s.calls = agg_[i].calls;
    s.total_cycles = agg_[i].total_cycles;
    s.self_cycles = agg_[i].self_cycles;
    s.total_allocs = agg_[i].total_allocs;
    s.self_allocs = agg_[i].self_allocs;
    s.total_bytes = agg_[i].total_bytes;
    s.self_bytes = agg_[i].self_bytes;
    out.push_back(s);
  }
  return out;
}

void Profiler::reset() noexcept {
  for (std::size_t i = 0; i < phases_; ++i) agg_[i] = Agg{};
  depth_ = 0;
  dropped_ = 0;
}

void Profiler::publish(MetricsRegistry& registry) const {
  const double rate = cycles_per_ns();
  for (std::size_t i = 0; i < phases_; ++i) {
    const Agg& g = agg_[i];
    const std::string base = std::string("prof.") + names_[i] + ".";
    registry.counter(base + "calls").add(g.calls);
    registry.counter(base + "self_allocs").add(g.self_allocs);
    registry.counter(base + "total_allocs").add(g.total_allocs);
    registry.counter(base + "self_bytes").add(g.self_bytes);
    registry.counter(base + "total_bytes").add(g.total_bytes);
    registry.counter(base + "self_cycles").add(g.self_cycles);
    registry.counter(base + "total_cycles").add(g.total_cycles);
    registry.counter(base + "self_ns")
        .add(static_cast<std::uint64_t>(
            static_cast<double>(g.self_cycles) / rate));
    registry.counter(base + "total_ns")
        .add(static_cast<std::uint64_t>(
            static_cast<double>(g.total_cycles) / rate));
  }
}

}  // namespace stig::obs::prof
