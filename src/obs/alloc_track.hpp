// Deterministic allocation accounting.
//
// src/obs/alloc_track.cpp replaces the global `operator new` / `operator
// delete` family with thin wrappers that keep *thread-local* counters:
// allocation count, cumulative bytes requested, free count, live bytes and
// peak live bytes. Every heap allocation in the process — engine, protocol
// drivers, standard-library containers — is counted, at the cost of one
// 16-byte (or alignment-sized) header per block and a handful of
// thread-local increments per call.
//
// Why thread-local: counts taken as deltas around a region of code are then
// attributable to exactly that region, with no cross-thread interleaving —
// a `par::BatchRunner` task measuring its own case sees the same numbers at
// any job count, which is what makes allocs-per-instant a *hard-gateable*
// regression metric (unlike cycle counts, which move with the machine).
// The one asymmetry: a block freed on a different thread than it was
// allocated on is debited from the freeing thread's live-byte count, so
// cross-thread hand-offs can drive a thread's `live_bytes` negative. The
// simulator's single-threaded-per-case discipline (see obs/sink.hpp) keeps
// measured regions free of that.
//
// Interposition is disabled under ASan/TSan/MSan (their runtimes own the
// allocator); `active()` reports whether counters are live so tests can
// skip exact-count assertions under sanitizers.
#pragma once

#include <cstdint>

namespace stig::obs::alloc {

/// Thread-local allocation counters, as of a `snapshot()` call.
struct Counters {
  std::uint64_t allocs = 0;       ///< operator-new calls on this thread.
  std::uint64_t frees = 0;        ///< operator-delete calls on this thread.
  std::uint64_t bytes = 0;        ///< Cumulative bytes requested.
  std::int64_t live_bytes = 0;    ///< Bytes allocated minus bytes freed
                                  ///< *by this thread* (can go negative on
                                  ///< cross-thread frees).
  std::int64_t peak_live_bytes = 0;  ///< High-water mark of live_bytes
                                     ///< since thread start or the last
                                     ///< `reset_peak()`.
};

/// Current counters for the calling thread. Cheap (TLS reads); never
/// allocates.
[[nodiscard]] Counters snapshot() noexcept;

/// Resets the calling thread's peak-live high-water mark to the current
/// live-byte level, so a following region's `peak_live_bytes` measures that
/// region's own high-water mark (relative peaks subtract the live level at
/// reset time).
void reset_peak() noexcept;

/// True when the interposed operators are compiled in (i.e. not a
/// sanitizer build) and counters are live.
[[nodiscard]] bool active() noexcept;

/// Convenience: the delta of `after - before` for the monotone fields
/// (allocs, frees, bytes). live/peak fields are copied from `after`.
[[nodiscard]] inline Counters delta(const Counters& before,
                                    const Counters& after) noexcept {
  Counters d;
  d.allocs = after.allocs - before.allocs;
  d.frees = after.frees - before.frees;
  d.bytes = after.bytes - before.bytes;
  d.live_bytes = after.live_bytes;
  d.peak_live_bytes = after.peak_live_bytes;
  return d;
}

}  // namespace stig::obs::alloc
