#include "obs/jsonl_parse.hpp"

#include <charconv>
#include <cstdlib>

namespace stig::obs {
namespace {

/// Finds `"key":` in `line` and returns the index just past the colon, or
/// npos. Keys never appear inside values in this schema (values are
/// numbers, bare words, or labels that contain no '"key":' patterns).
std::size_t value_pos(std::string_view line, std::string_view key) {
  const std::string needle = "\"" + std::string(key) + "\":";
  const std::size_t pos = line.find(needle);
  return pos == std::string_view::npos ? pos : pos + needle.size();
}

std::optional<double> number_at(std::string_view line, std::string_view key) {
  const std::size_t pos = value_pos(line, key);
  if (pos == std::string_view::npos) return std::nullopt;
  double out = 0.0;
  const char* begin = line.data() + pos;
  const char* end = line.data() + line.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  if (ec != std::errc{} || ptr == begin) return std::nullopt;
  return out;
}

std::optional<std::string_view> string_at(std::string_view line,
                                          std::string_view key) {
  std::size_t pos = value_pos(line, key);
  if (pos == std::string_view::npos || pos >= line.size() ||
      line[pos] != '"') {
    return std::nullopt;
  }
  ++pos;
  const std::size_t close = line.find('"', pos);
  if (close == std::string_view::npos) return std::nullopt;
  // Labels in this schema are identifiers; escapes never appear.
  return line.substr(pos, close - pos);
}

std::optional<EventType> type_of(std::string_view name) {
  for (unsigned i = 0; i < kEventTypeCount; ++i) {
    const auto t = static_cast<EventType>(i);
    if (name == event_type_name(t)) return t;
  }
  return std::nullopt;
}

}  // namespace

const char* EventLog::intern(std::string_view s) {
  return labels_.emplace(s).first->c_str();
}

std::optional<Event> EventLog::parse_line(std::string_view line) {
  const auto type_name = string_at(line, "type");
  if (!type_name) return std::nullopt;
  const auto type = type_of(*type_name);
  if (!type) return std::nullopt;
  Event e;
  e.type = *type;
  const auto u64 = [&](std::string_view key, auto& out) {
    if (const auto v = number_at(line, key)) {
      out = static_cast<std::remove_reference_t<decltype(out)>>(*v);
    }
  };
  u64("t", e.t);
  u64("robot", e.robot);
  u64("peer", e.peer);
  u64("aux", e.aux);
  if (const auto v = number_at(line, "x")) e.x = *v;
  if (const auto v = number_at(line, "y")) e.y = *v;
  if (const auto v = number_at(line, "value")) e.value = *v;
  if (const auto v = number_at(line, "bit")) {
    e.bit = static_cast<std::uint32_t>(*v);
  }
  if (const auto label = string_at(line, "label")) {
    e.label = intern(*label);
  }
  return e;
}

std::size_t EventLog::read(std::istream& in) {
  std::size_t failed = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (const auto e = parse_line(line)) {
      events_.push_back(*e);
    } else {
      ++failed;
    }
  }
  return failed;
}

}  // namespace stig::obs
