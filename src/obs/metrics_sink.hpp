// MetricsSink — folds the event stream into a MetricsRegistry.
//
// Standard metric names (see docs/OBSERVABILITY.md):
//   events.<type>            counter, one per event type
//   chat.ack_latency         histogram, instants per implicit-ack window
//   motion.move_distance     histogram, global units per move
//   motion.min_separation    gauge, latest min pairwise separation
//   run.instants             counter, completed instants
// The engine additionally feeds `engine.step_wall_ns` directly (see
// sim/engine.hpp) — wall time does not flow through events.
#pragma once

#include "obs/metrics.hpp"
#include "obs/sink.hpp"

namespace stig::obs {

class MetricsSink final : public EventSink {
 public:
  /// `registry` is not owned and must outlive the sink.
  explicit MetricsSink(MetricsRegistry& registry);

  void on_event(const Event& e) override;

 private:
  MetricsRegistry* registry_;
  Counter* type_counters_[kEventTypeCount] = {};
  LogHistogram* ack_latency_;
  LogHistogram* move_distance_;
  Gauge* min_separation_;
  Counter* instants_;
};

}  // namespace stig::obs
