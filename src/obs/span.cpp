#include "obs/span.hpp"

#include <algorithm>

#include "obs/json.hpp"

namespace stig::obs {

void SpanBuilder::on_event(const Event& e) {
  finalized_ = false;
  last_t_ = std::max(last_t_, e.t);
  switch (e.type) {
    case EventType::Activation:
      ++counters_[e.robot].activations;
      return;
    case EventType::Move:
      ++counters_[e.robot].moves;
      return;
    case EventType::StepComplete:
      ++instants_;
      return;
    case EventType::PhaseEnter:
      phase_timeline_[e.robot].emplace_back(
          e.t, e.label != nullptr ? e.label : "");
      return;
    case EventType::AckObserved:
      acks_[e.robot].emplace_back(e.t, e.value);
      return;
    case EventType::BitEmitted: {
      // Broadcast bits carry no peer; the lane key uses -1.
      const bool broadcast = e.label != nullptr &&
                             std::string_view(e.label) == "broadcast";
      const LaneKey key{e.robot, broadcast ? -1 : e.peer};
      Lane& lane = lanes_[key];
      lane.bit_times.push_back(e.t);
      ++counters_[e.robot].bits_sent;
      lane.parser.push_bit(static_cast<std::uint8_t>(e.bit & 1u));
      const std::uint64_t corrupt_before = lane.parser.corrupt_frames();
      for (auto& payload : lane.parser.take_messages()) {
        MessageSpan span;
        span.id = spans_.size();
        span.sender = e.robot;
        span.addressee = key.second;
        span.broadcast = broadcast;
        span.payload_bytes = payload.size();
        span.bit_times.assign(
            lane.bit_times.begin() +
                static_cast<std::ptrdiff_t>(lane.boundary),
            lane.bit_times.begin() +
                static_cast<std::ptrdiff_t>(lane.parser.bits_consumed()));
        lane.boundary = lane.parser.bits_consumed();
        lane.span_ids.push_back(span.id);
        spans_.push_back(std::move(span));
      }
      if (lane.parser.corrupt_frames() > corrupt_before) {
        // A malformed sender-side frame: skip its bits, count it.
        corrupt_frames_ += lane.parser.corrupt_frames() - corrupt_before;
        lane.boundary = lane.parser.bits_consumed();
      }
      return;
    }
    case EventType::FrameDelivered: {
      // Recorded, not matched: async senders stamp their final BitEmitted
      // only after observing the Lemma 4.1 ack, so the delivery can precede
      // the span's creation in stream order. Matching runs in finalize().
      const bool broadcast = e.label != nullptr &&
                             std::string_view(e.label) == "broadcast";
      PendingDelivery d;
      d.robot = e.robot;
      d.lane = LaneKey{e.peer, broadcast ? -1 : e.aux};
      d.t = e.t;
      d.kind = e.label != nullptr ? e.label : "inbox";
      pending_deliveries_.push_back(std::move(d));
      return;
    }
    default:
      return;  // Collision/Teleport carry no span information.
  }
}

void SpanBuilder::finalize() {
  if (finalized_) return;
  finalized_ = true;

  // Delivery matching: frames reach a given receiver on a given lane in
  // emission order, so the k-th delivery on (receiver, lane) closes the
  // lane's k-th span.
  for (MessageSpan& span : spans_) span.deliveries.clear();
  std::map<std::pair<std::int64_t, LaneKey>, std::uint64_t> delivered;
  for (const PendingDelivery& p : pending_deliveries_) {
    const auto lane_it = lanes_.find(p.lane);
    if (lane_it == lanes_.end()) continue;  // Truncated log: no emission.
    const Lane& lane = lane_it->second;
    std::uint64_t& index = delivered[{p.robot, p.lane}];
    if (index >= lane.span_ids.size()) continue;  // Corrupt stream.
    spans_[lane.span_ids[index]].deliveries.push_back(
        SpanDelivery{p.robot, p.t, p.kind});
    ++index;
  }

  const std::uint64_t run_instants =
      instants_ > 0 ? instants_ : last_t_ + 1;

  // Phase attribution: overlap each span's [start, end] window with the
  // sender's phase timeline (a phase holds from its PhaseEnter to the next).
  for (MessageSpan& span : spans_) {
    span.phases.clear();
    const auto tl_it = phase_timeline_.find(span.sender);
    const std::uint64_t win_begin = span.start();
    const std::uint64_t win_end = span.end() + 1;  // Half-open.
    if (tl_it != phase_timeline_.end()) {
      const auto& timeline = tl_it->second;
      for (std::size_t i = 0; i < timeline.size(); ++i) {
        const std::uint64_t seg_begin = timeline[i].first;
        const std::uint64_t seg_end = i + 1 < timeline.size()
                                          ? timeline[i + 1].first
                                          : run_instants;
        const std::uint64_t lo = std::max(seg_begin, win_begin);
        const std::uint64_t hi = std::min(seg_end, win_end);
        if (lo >= hi) continue;
        span.phases.push_back(PhaseSegment{timeline[i].second, lo, hi});
      }
    }
    // Ack attribution: acks the sender observed during transmission.
    span.ack_count = 0;
    span.ack_total = 0.0;
    const auto ack_it = acks_.find(span.sender);
    if (ack_it != acks_.end()) {
      for (const auto& [t, latency] : ack_it->second) {
        if (t >= win_begin && t <= span.last_bit()) {
          ++span.ack_count;
          span.ack_total += latency;
        }
      }
    }
  }

  // Utilization: a robot is busy inside its own transmission windows.
  utilization_.clear();
  std::map<std::int64_t, std::uint64_t> busy;
  for (const MessageSpan& span : spans_) {
    busy[span.sender] += span.last_bit() - span.start() + 1;
  }
  for (const auto& [robot, c] : counters_) {
    RobotUtilization u;
    u.robot = robot;
    u.activations = c.activations;
    u.moves = c.moves;
    u.bits_sent = c.bits_sent;
    u.busy_instants = std::min(busy[robot], run_instants);
    u.silent_instants = run_instants - u.busy_instants;
    u.utilization = run_instants == 0
                        ? 0.0
                        : static_cast<double>(u.busy_instants) /
                              static_cast<double>(run_instants);
    utilization_.push_back(u);
  }

  // Critical path: the sender whose span finished last; its outbox is FIFO,
  // so its spans form a chain of transmit windows separated by queue waits.
  critical_path_ = CriticalPath{};
  const MessageSpan* terminal = nullptr;
  for (const MessageSpan& span : spans_) {
    if (terminal == nullptr || span.end() > terminal->end()) {
      terminal = &span;
    }
  }
  if (terminal != nullptr) {
    critical_path_.sender = terminal->sender;
    std::vector<const MessageSpan*> chain;
    for (const MessageSpan& span : spans_) {
      if (span.sender == terminal->sender &&
          span.start() <= terminal->start()) {
        chain.push_back(&span);
      }
    }
    std::sort(chain.begin(), chain.end(),
              [](const MessageSpan* a, const MessageSpan* b) {
                return a->start() < b->start();
              });
    for (const MessageSpan* span : chain) {
      critical_path_.span_ids.push_back(span->id);
      critical_path_.transmit_instants +=
          span->last_bit() - span->start() + 1;
    }
    // The chain runs until the later of the terminal delivery and the
    // sender's own last bit (async senders outlast the delivery).
    std::uint64_t chain_end = terminal->end();
    for (const MessageSpan* span : chain) {
      chain_end = std::max(chain_end, span->last_bit());
    }
    critical_path_.total_instants = chain_end - chain.front()->start() + 1;
    critical_path_.wait_instants =
        critical_path_.total_instants > critical_path_.transmit_instants
            ? critical_path_.total_instants -
                  critical_path_.transmit_instants
            : 0;
  }
}

void SpanBuilder::write_json(std::ostream& out) {
  finalize();
  out << "{\n  \"instants\": " << instants_
      << ",\n  \"span_count\": " << spans_.size()
      << ",\n  \"corrupt_frames\": " << corrupt_frames_
      << ",\n  \"spans\": [";
  for (std::size_t i = 0; i < spans_.size(); ++i) {
    const MessageSpan& s = spans_[i];
    out << (i == 0 ? "\n" : ",\n") << "    {\"id\": " << s.id
        << ", \"sender\": " << s.sender
        << ", \"addressee\": " << s.addressee << ", \"broadcast\": "
        << (s.broadcast ? "true" : "false")
        << ", \"payload_bytes\": " << s.payload_bytes
        << ", \"bits\": " << s.bit_times.size()
        << ", \"start\": " << s.start()
        << ", \"last_bit\": " << s.last_bit() << ", \"end\": " << s.end()
        << ", \"end_to_end\": " << s.end_to_end()
        << ", \"instants_per_bit\": "
        << json_number(s.bit_times.empty()
                           ? 0.0
                           : static_cast<double>(s.end_to_end()) /
                                 static_cast<double>(s.bit_times.size()))
        << ",\n     \"deliveries\": [";
    for (std::size_t d = 0; d < s.deliveries.size(); ++d) {
      out << (d == 0 ? "" : ", ") << "{\"robot\": " << s.deliveries[d].robot
          << ", \"t\": " << s.deliveries[d].t << ", \"kind\": "
          << json_quote(s.deliveries[d].kind) << "}";
    }
    out << "],\n     \"phases\": [";
    // Aggregate contiguous segments per phase name for the JSON view.
    std::vector<std::pair<std::string, std::uint64_t>> agg;
    for (const PhaseSegment& seg : s.phases) {
      auto it = std::find_if(agg.begin(), agg.end(), [&](const auto& p) {
        return p.first == seg.phase;
      });
      if (it == agg.end()) {
        agg.emplace_back(seg.phase, seg.instants());
      } else {
        it->second += seg.instants();
      }
    }
    for (std::size_t p = 0; p < agg.size(); ++p) {
      out << (p == 0 ? "" : ", ") << "{\"phase\": "
          << json_quote(agg[p].first) << ", \"instants\": " << agg[p].second
          << "}";
    }
    out << "],\n     \"acks\": {\"count\": " << s.ack_count
        << ", \"total_instants\": " << json_number(s.ack_total) << "}}";
  }
  out << (spans_.empty() ? "" : "\n  ") << "],\n  \"robots\": [";
  for (std::size_t i = 0; i < utilization_.size(); ++i) {
    const RobotUtilization& u = utilization_[i];
    out << (i == 0 ? "\n" : ",\n") << "    {\"robot\": " << u.robot
        << ", \"activations\": " << u.activations
        << ", \"moves\": " << u.moves << ", \"bits_sent\": " << u.bits_sent
        << ", \"busy_instants\": " << u.busy_instants
        << ", \"silent_instants\": " << u.silent_instants
        << ", \"utilization\": " << json_number(u.utilization) << "}";
  }
  out << (utilization_.empty() ? "" : "\n  ")
      << "],\n  \"critical_path\": {\"sender\": " << critical_path_.sender
      << ", \"span_ids\": [";
  for (std::size_t i = 0; i < critical_path_.span_ids.size(); ++i) {
    out << (i == 0 ? "" : ", ") << critical_path_.span_ids[i];
  }
  out << "], \"total_instants\": " << critical_path_.total_instants
      << ", \"transmit_instants\": " << critical_path_.transmit_instants
      << ", \"wait_instants\": " << critical_path_.wait_instants << "}\n}\n";
}

void SpanBuilder::write_chrome_trace(std::ostream& out) {
  finalize();
  // One simulated instant = one microsecond, matching ChromeTraceSink.
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  const auto emit = [&](const std::string& line) {
    out << (first ? "" : ",\n") << line;
    first = false;
  };
  for (const auto& [robot, c] : counters_) {
    (void)c;
    emit("{\"ph\":\"M\",\"pid\":0,\"tid\":" + std::to_string(robot) +
         ",\"name\":\"thread_name\",\"args\":{\"name\":\"robot " +
         std::to_string(robot) + "\"}}");
  }
  for (const MessageSpan& s : spans_) {
    const std::string addressee =
        s.broadcast ? "*" : std::to_string(s.addressee);
    // The message span encloses its phase children on the sender's track;
    // Perfetto nests complete events by containment.
    emit("{\"ph\":\"X\",\"pid\":0,\"tid\":" + std::to_string(s.sender) +
         ",\"ts\":" + std::to_string(s.start()) + ",\"dur\":" +
         std::to_string(s.end() - s.start() + 1) + ",\"cat\":\"message\"," +
         "\"name\":" + json_quote("msg#" + std::to_string(s.id) + " -> " +
                                  addressee) +
         ",\"args\":{\"bits\":" + std::to_string(s.bit_times.size()) +
         ",\"payload_bytes\":" + std::to_string(s.payload_bytes) + "}}");
    for (const PhaseSegment& seg : s.phases) {
      emit("{\"ph\":\"X\",\"pid\":0,\"tid\":" + std::to_string(s.sender) +
           ",\"ts\":" + std::to_string(seg.begin) + ",\"dur\":" +
           std::to_string(seg.instants()) + ",\"cat\":\"message_phase\"," +
           "\"name\":" + json_quote(seg.phase) + "}");
    }
    for (const SpanDelivery& d : s.deliveries) {
      emit("{\"ph\":\"i\",\"pid\":0,\"tid\":" + std::to_string(d.robot) +
           ",\"ts\":" + std::to_string(d.t) + ",\"s\":\"t\",\"cat\":" +
           "\"delivery\",\"name\":" +
           json_quote("deliver msg#" + std::to_string(s.id) + " (" +
                      d.kind + ")") +
           "}");
    }
  }
  out << "\n]}\n";
}

}  // namespace stig::obs
