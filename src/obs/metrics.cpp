#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "obs/json.hpp"

namespace stig::obs {

LogHistogram::LogHistogram(double min_value, std::size_t buckets)
    : min_value_(min_value), counts_(std::max<std::size_t>(buckets, 3)) {
  if (!(min_value > 0.0)) {
    throw std::invalid_argument("LogHistogram: min_value must be positive");
  }
}

std::size_t LogHistogram::bucket_index(double v) const noexcept {
  if (!(v >= min_value_)) return 0;  // Underflow (and NaN) bucket.
  // Bucket i >= 1 covers [min_value * 2^(i-1), min_value * 2^i).
  const int e = static_cast<int>(std::floor(std::log2(v / min_value_)));
  const std::size_t i = static_cast<std::size_t>(e) + 1;
  return std::min(i, counts_.size() - 1);
}

double LogHistogram::bucket_lower(std::size_t i) const noexcept {
  if (i == 0) return 0.0;
  return min_value_ * std::exp2(static_cast<double>(i - 1));
}

void LogHistogram::record(double v) noexcept {
  counts_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  total_.fetch_add(1, std::memory_order_relaxed);
  double s = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(s, s + v, std::memory_order_relaxed)) {
  }
  if (!any_.exchange(true, std::memory_order_relaxed)) {
    min_.store(v, std::memory_order_relaxed);
    max_.store(v, std::memory_order_relaxed);
    return;
  }
  double m = min_.load(std::memory_order_relaxed);
  while (v < m &&
         !min_.compare_exchange_weak(m, v, std::memory_order_relaxed)) {
  }
  double mx = max_.load(std::memory_order_relaxed);
  while (v > mx &&
         !max_.compare_exchange_weak(mx, v, std::memory_order_relaxed)) {
  }
}

double LogHistogram::min() const noexcept {
  return any_.load(std::memory_order_relaxed)
             ? min_.load(std::memory_order_relaxed)
             : 0.0;
}

double LogHistogram::max() const noexcept {
  return any_.load(std::memory_order_relaxed)
             ? max_.load(std::memory_order_relaxed)
             : 0.0;
}

void LogHistogram::merge_from(const LogHistogram& other) {
  if (other.min_value_ != min_value_ ||
      other.counts_.size() != counts_.size()) {
    throw std::invalid_argument(
        "LogHistogram::merge_from: bucket layouts differ");
  }
  if (&other == this || !other.any_.load(std::memory_order_relaxed)) return;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i].fetch_add(other.bucket_count_at(i), std::memory_order_relaxed);
  }
  total_.fetch_add(other.count(), std::memory_order_relaxed);
  double s = sum_.load(std::memory_order_relaxed);
  const double add = other.sum();
  while (
      !sum_.compare_exchange_weak(s, s + add, std::memory_order_relaxed)) {
  }
  const double omin = other.min();
  const double omax = other.max();
  if (!any_.exchange(true, std::memory_order_relaxed)) {
    min_.store(omin, std::memory_order_relaxed);
    max_.store(omax, std::memory_order_relaxed);
    return;
  }
  double m = min_.load(std::memory_order_relaxed);
  while (omin < m &&
         !min_.compare_exchange_weak(m, omin, std::memory_order_relaxed)) {
  }
  double mx = max_.load(std::memory_order_relaxed);
  while (omax > mx &&
         !max_.compare_exchange_weak(mx, omax, std::memory_order_relaxed)) {
  }
}

double LogHistogram::quantile_upper(double q) const noexcept {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(n)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += bucket_count_at(i);
    if (seen >= target && seen > 0) {
      // Upper edge of bucket i; the last bucket has no finite edge — report
      // the observed maximum instead.
      if (i + 1 >= counts_.size()) return max();
      return std::min(bucket_lower(i + 1), max());
    }
  }
  return max();
}

MetricsRegistry::Instrument& MetricsRegistry::lookup(const std::string& name,
                                                     Kind kind,
                                                     double min_value,
                                                     std::size_t buckets) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = instruments_.find(name);
  if (it == instruments_.end()) {
    Instrument inst;
    inst.kind = kind;
    switch (kind) {
      case Kind::counter:
        inst.counter = std::make_unique<Counter>();
        break;
      case Kind::gauge:
        inst.gauge = std::make_unique<Gauge>();
        break;
      case Kind::histogram:
        inst.histogram = std::make_unique<LogHistogram>(min_value, buckets);
        break;
    }
    it = instruments_.emplace(name, std::move(inst)).first;
  } else if (it->second.kind != kind) {
    throw std::invalid_argument("MetricsRegistry: \"" + name +
                                "\" already registered as a different kind");
  }
  return it->second;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  return *lookup(name, Kind::counter, 0.0, 0).counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  return *lookup(name, Kind::gauge, 0.0, 0).gauge;
}

LogHistogram& MetricsRegistry::histogram(const std::string& name,
                                         double min_value,
                                         std::size_t buckets) {
  return *lookup(name, Kind::histogram, min_value, buckets).histogram;
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  if (&other == this) return;
  std::scoped_lock lock(mutex_, other.mutex_);
  for (const auto& [name, theirs] : other.instruments_) {
    auto it = instruments_.find(name);
    if (it == instruments_.end()) {
      Instrument inst;
      inst.kind = theirs.kind;
      switch (theirs.kind) {
        case Kind::counter:
          inst.counter = std::make_unique<Counter>();
          break;
        case Kind::gauge:
          inst.gauge = std::make_unique<Gauge>();
          break;
        case Kind::histogram:
          inst.histogram = std::make_unique<LogHistogram>(
              theirs.histogram->min_value(),
              theirs.histogram->bucket_count());
          break;
      }
      it = instruments_.emplace(name, std::move(inst)).first;
    } else if (it->second.kind != theirs.kind) {
      throw std::invalid_argument("MetricsRegistry::merge_from: \"" + name +
                                  "\" registered as a different kind");
    }
    Instrument& mine = it->second;
    switch (theirs.kind) {
      case Kind::counter:
        mine.counter->add(theirs.counter->value());
        break;
      case Kind::gauge:
        mine.gauge->set(theirs.gauge->value());
        break;
      case Kind::histogram:
        mine.histogram->merge_from(*theirs.histogram);
        break;
    }
  }
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return instruments_.size();
}

void MetricsRegistry::write_json(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  out << '{';
  bool first = true;
  for (const auto& [name, inst] : instruments_) {
    if (!first) out << ',';
    first = false;
    out << json_quote(name) << ':';
    switch (inst.kind) {
      case Kind::counter:
        out << inst.counter->value();
        break;
      case Kind::gauge:
        out << json_number(inst.gauge->value());
        break;
      case Kind::histogram: {
        const LogHistogram& h = *inst.histogram;
        out << "{\"count\":" << h.count()
            << ",\"sum\":" << json_number(h.sum())
            << ",\"mean\":" << json_number(h.mean())
            << ",\"min\":" << json_number(h.min())
            << ",\"max\":" << json_number(h.max())
            << ",\"p50\":" << json_number(h.quantile_upper(0.5))
            << ",\"p99\":" << json_number(h.quantile_upper(0.99)) << '}';
        break;
      }
    }
  }
  out << '}';
}

}  // namespace stig::obs
