#include "obs/cov.hpp"

#include <algorithm>
#include <cstring>

namespace stig::obs::cov {

namespace {

/// Packs (domain, from, to) into an open-addressing key. State ids are
/// < kMaxStates = 256, so 8 bits each; the domain rides above them. The
/// all-ones value is reserved for empty slots and unreachable here.
[[nodiscard]] std::uint32_t pack_key(Domain d, StateId from,
                                     StateId to) noexcept {
  return (static_cast<std::uint32_t>(d) << 16) |
         (static_cast<std::uint32_t>(from) << 8) |
         static_cast<std::uint32_t>(to);
}

}  // namespace

CovMap::CovMap() noexcept {
  std::memset(names_, 0, sizeof(names_));
  for (Slot& s : slots_) {
    s.key = kEmptyKey;
    s.count = 0;
  }
}

StateId CovMap::state(const char* name) noexcept {
  if (name == nullptr) {
    ++dropped_;
    return kInvalidState;
  }
  for (std::uint16_t i = 0; i < state_count_; ++i) {
    if (std::strcmp(names_[i], name) == 0) return i;
  }
  if (state_count_ == kMaxStates ||
      std::strlen(name) >= kNameCap) {
    ++dropped_;
    return kInvalidState;
  }
  std::strcpy(names_[state_count_], name);
  return state_count_++;
}

StateId CovMap::state(const char* prefix, const char* name) noexcept {
  if (prefix == nullptr || name == nullptr) {
    ++dropped_;
    return kInvalidState;
  }
  char buf[kNameCap];
  const std::size_t np = std::strlen(prefix);
  const std::size_t nn = std::strlen(name);
  if (np + 1 + nn >= kNameCap) {
    ++dropped_;
    return kInvalidState;
  }
  std::memcpy(buf, prefix, np);
  buf[np] = '.';
  std::memcpy(buf + np + 1, name, nn + 1);
  return state(buf);
}

CovMap::Slot* CovMap::slot_for(std::uint32_t key) noexcept {
  // Fibonacci-hash the packed key; linear probe. The table never fills
  // past kMaxEdges (hit() refuses inserts at capacity), so the probe
  // always terminates.
  std::size_t idx = (key * 2654435761u) & (kMaxEdges - 1);
  for (std::size_t probes = 0; probes < kMaxEdges; ++probes) {
    Slot& s = slots_[idx];
    if (s.key == key) return &s;
    if (s.key == kEmptyKey) {
      if (used_ == kMaxEdges - 1) return nullptr;  // Keep one empty slot.
      s.key = key;
      ++used_;
      return &s;
    }
    idx = (idx + 1) & (kMaxEdges - 1);
  }
  return nullptr;
}

void CovMap::hit(Domain d, StateId from, StateId to) noexcept {
  if (from == kInvalidState || to == kInvalidState) {
    ++dropped_;
    return;
  }
  Slot* s = slot_for(pack_key(d, from, to));
  if (s == nullptr) {
    ++dropped_;
    return;
  }
  ++s->count;
  ++hits_;
}

void CovMap::merge_from(const CovMap& other) noexcept {
  for (const Slot& s : other.slots_) {
    if (s.key == kEmptyKey) continue;
    const Domain d = static_cast<Domain>((s.key >> 16) & 0xff);
    const StateId of = static_cast<StateId>((s.key >> 8) & 0xff);
    const StateId ot = static_cast<StateId>(s.key & 0xff);
    const StateId mf = state(other.names_[of]);
    const StateId mt = state(other.names_[ot]);
    if (mf == kInvalidState || mt == kInvalidState) {
      dropped_ += s.count;
      continue;
    }
    Slot* mine = slot_for(pack_key(d, mf, mt));
    if (mine == nullptr) {
      dropped_ += s.count;
      continue;
    }
    mine->count += s.count;
    hits_ += s.count;
  }
  dropped_ += other.dropped_;
}

std::vector<CovMap::Row> CovMap::rows() const {
  std::vector<Row> out;
  out.reserve(used_);
  for (const Slot& s : slots_) {
    if (s.key == kEmptyKey) continue;
    Row r;
    r.domain = static_cast<Domain>((s.key >> 16) & 0xff);
    r.from = names_[(s.key >> 8) & 0xff];
    r.to = names_[s.key & 0xff];
    r.count = s.count;
    out.push_back(r);
  }
  std::sort(out.begin(), out.end(), [](const Row& a, const Row& b) {
    if (a.domain != b.domain) return a.domain < b.domain;
    const int f = std::strcmp(a.from, b.from);
    if (f != 0) return f < 0;
    return std::strcmp(a.to, b.to) < 0;
  });
  return out;
}

std::string CovMap::render_json(const std::string& name) const {
  // Counts are exact integers; rendered via to_string (not the double
  // formatter) so the artifact is bit-for-bit a function of the counts.
  std::string out;
  out += "{\n";
  out += "  \"bench\": \"" + name + "\",\n";
  out += "  \"values\": {\n";
  out += "    \"edges\": " + std::to_string(used_) + ",\n";
  out += "    \"hits\": " + std::to_string(hits_) + ",\n";
  out += "    \"dropped\": " + std::to_string(dropped_);
  for (const Row& r : rows()) {
    out += ",\n    \"edge.";
    out += domain_name(r.domain);
    out += '.';
    out += r.from;
    out += '>';
    out += r.to;
    out += "\": " + std::to_string(r.count);
  }
  out += "\n  }\n}\n";
  return out;
}

}  // namespace stig::obs::cov
