// obs::prof — scoped cycle/allocation profiler for the engine hot path.
//
// A `Profiler` owns a small fixed table of named phases ("engine.sched",
// "engine.compute", "net.collect", ...) and a stack of active frames. Code
// brackets a region with a `Scope`; on exit the frame's deltas — TSC
// cycles, thread-local allocation count and bytes (obs/alloc_track.hpp) —
// are folded into the phase's aggregate, split into *total* (inclusive of
// nested scopes) and *self* (exclusive). The stack is what makes the
// profiler hierarchical: a parent phase's self cost is its total minus
// whatever its children accounted for, with no double counting.
//
// Two cost domains, two gating policies (see obs/metric_keys.hpp):
//
//  * cycles / nanoseconds — machine-speed, *informational*. Cycle counts
//    come from one rdtsc pair per scope (~20 cycles of overhead);
//    `publish` converts them to approximate wall nanoseconds with a
//    once-per-process calibration against steady_clock.
//  * allocation count / bytes — a pure function of (code, seed), *hard
//    gateable*. This is the number the stigperf regression gate pins.
//
// Concurrency model: like an EventSink, a Profiler belongs to one
// simulation on one thread (src/par tasks each wire their own). Everything
// here is allocation-free after construction — profiling the allocator
// must not perturb it.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/alloc_track.hpp"

namespace stig::obs {
class MetricsRegistry;
}

namespace stig::obs::prof {

using PhaseId = std::uint32_t;

/// Aggregate costs of one phase, as returned by `Profiler::stats`.
struct PhaseStats {
  const char* name = nullptr;
  std::uint64_t calls = 0;
  std::uint64_t total_cycles = 0;  ///< Inclusive of nested scopes.
  std::uint64_t self_cycles = 0;   ///< Exclusive of nested scopes.
  std::uint64_t total_allocs = 0;
  std::uint64_t self_allocs = 0;
  std::uint64_t total_bytes = 0;
  std::uint64_t self_bytes = 0;
};

class Profiler {
 public:
  /// Phase table capacity; registration past this throws.
  static constexpr std::size_t kMaxPhases = 32;
  /// Deepest scope nesting tracked exactly; deeper frames are dropped
  /// (enter/exit stay balanced, costs attribute to the innermost tracked
  /// frame).
  static constexpr std::size_t kMaxDepth = 16;

  /// Returns the id for `name`, registering it on first use (by content,
  /// so the same phase name from different call sites shares one row).
  /// Registration is not hot-path; throws std::length_error when the table
  /// is full.
  PhaseId phase(const char* name);

  /// Opens a frame for `id`. Prefer `Scope`.
  void enter(PhaseId id) noexcept;
  /// Closes the innermost frame and folds its deltas into the aggregates.
  void exit() noexcept;

  /// Aggregates per phase, in registration order.
  [[nodiscard]] std::vector<PhaseStats> stats() const;

  /// Number of registered phases.
  [[nodiscard]] std::size_t phase_count() const noexcept { return phases_; }

  /// Clears every aggregate (phase registrations survive). The frame stack
  /// must be empty.
  void reset() noexcept;

  /// Publishes every phase as counters named `prof.<phase>.<field>`:
  /// calls, self_allocs / total_allocs, self_bytes / total_bytes (gated
  /// keys) and self_cycles / total_cycles / self_ns / total_ns
  /// (informational by the metric-key convention). Nanoseconds use
  /// `cycles_per_ns()` calibration.
  void publish(MetricsRegistry& registry) const;

  /// Reads the processor timestamp counter (falls back to steady_clock
  /// nanoseconds on targets without one).
  [[nodiscard]] static std::uint64_t now_cycles() noexcept;

  /// Measured TSC rate, calibrated once per process against steady_clock
  /// (1.0 on the steady_clock fallback, where "cycles" are nanoseconds).
  [[nodiscard]] static double cycles_per_ns();

 private:
  struct Agg {
    std::uint64_t calls = 0;
    std::uint64_t total_cycles = 0, self_cycles = 0;
    std::uint64_t total_allocs = 0, self_allocs = 0;
    std::uint64_t total_bytes = 0, self_bytes = 0;
  };
  struct Frame {
    PhaseId id = 0;
    std::uint64_t start_cycles = 0, start_allocs = 0, start_bytes = 0;
    std::uint64_t child_cycles = 0, child_allocs = 0, child_bytes = 0;
  };

  const char* names_[kMaxPhases] = {};
  Agg agg_[kMaxPhases] = {};
  std::size_t phases_ = 0;
  Frame stack_[kMaxDepth] = {};
  std::size_t depth_ = 0;
  std::size_t dropped_ = 0;  ///< Frames past kMaxDepth (balance bookkeeping).
};

/// RAII frame. A null profiler makes the scope a no-op — the hot path pays
/// one branch when profiling is off, mirroring the null-sink pattern.
class Scope {
 public:
  Scope(Profiler* p, PhaseId id) noexcept : p_(p) {
    if (p_ != nullptr) p_->enter(id);
  }
  ~Scope() {
    if (p_ != nullptr) p_->exit();
  }
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  Profiler* p_;
};

}  // namespace stig::obs::prof
