// MetricsRegistry — named counters, gauges and log-scale histograms.
//
// Designed for the engine hot path: instruments are registered once (under
// a mutex) and then updated through plain pointers with relaxed atomics, so
// recording a sample is lock-free and wait-free. Export walks the registry
// and renders a stable JSON object.
//
// Histograms are log2-bucketed: bucket 0 counts samples below `min_value`,
// bucket i (1 <= i < bucket_count-1) counts samples in
// [min_value * 2^(i-1), min_value * 2^i), and the last bucket is the
// overflow. Log-scale keeps the footprint constant across the ten orders of
// magnitude between "instants per bit" and "nanoseconds per Engine::step".
//
// Concurrency model for batch runs (src/par): one registry per task, merged
// into the batch registry on join via `merge_from`. Individual instruments
// are thread-safe (relaxed atomics), but sharing one registry across
// concurrently-running cases would interleave their samples and make
// per-case numbers meaningless — the per-task-registry + merge pattern
// keeps every case's metrics attributable AND gives a deterministic,
// job-count-invariant aggregate (counter sums and histogram buckets are
// commutative; gauges are last-write-wins in join order, i.e. case order).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

namespace stig::obs {

/// Monotone counter. Wraps modulo 2^64 on overflow (never throws, never
/// saturates — the exporters report the raw value).
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Log2-bucketed histogram over non-negative samples.
class LogHistogram {
 public:
  /// `min_value`: lower edge of the first sized bucket (> 0).
  /// `buckets`: total bucket count including underflow and overflow (>= 3).
  explicit LogHistogram(double min_value = 1.0, std::size_t buckets = 48);

  void record(double v) noexcept;

  [[nodiscard]] std::size_t bucket_count() const noexcept {
    return counts_.size();
  }
  /// Index of the bucket `v` falls into.
  [[nodiscard]] std::size_t bucket_index(double v) const noexcept;
  /// Inclusive lower edge of bucket `i` (0.0 for the underflow bucket).
  [[nodiscard]] double bucket_lower(std::size_t i) const noexcept;
  [[nodiscard]] std::uint64_t bucket_count_at(std::size_t i) const noexcept {
    return counts_[i].load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    return total_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double mean() const noexcept {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
  }
  [[nodiscard]] double min() const noexcept;
  [[nodiscard]] double max() const noexcept;
  /// Lower edge of the first sized bucket, as passed at construction.
  [[nodiscard]] double min_value() const noexcept { return min_value_; }

  /// Folds `other`'s samples into this histogram: bucket counts, total and
  /// sum add; min/max widen. Throws std::invalid_argument when the bucket
  /// layouts (min_value, bucket count) differ — merging those would move
  /// samples across bucket edges. `other` must be quiescent.
  void merge_from(const LogHistogram& other);

  /// Upper edge of the bucket containing the q-quantile (0 <= q <= 1); an
  /// upper bound on the true quantile, exact up to bucket resolution.
  [[nodiscard]] double quantile_upper(double q) const noexcept;

 private:
  double min_value_;
  std::vector<std::atomic<std::uint64_t>> counts_;
  std::atomic<std::uint64_t> total_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
  std::atomic<bool> any_{false};
};

/// Owns every instrument; hands out stable pointers.
class MetricsRegistry {
 public:
  /// Returns the counter named `name`, creating it on first use. Throws
  /// std::invalid_argument when `name` already names a different kind.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `min_value`/`buckets` apply only on creation; later lookups with
  /// different parameters return the existing histogram unchanged.
  LogHistogram& histogram(const std::string& name, double min_value = 1.0,
                          std::size_t buckets = 48);

  /// Folds every instrument of `other` into this registry, creating
  /// instruments that do not exist yet: counters add, gauges take `other`'s
  /// value (last-write-wins, in join order), histograms merge bucketwise.
  /// Throws std::invalid_argument on a kind or bucket-layout clash. `other`
  /// must be quiescent (its task has joined); merging a registry into
  /// itself is a no-op.
  void merge_from(const MetricsRegistry& other);

  /// Renders every instrument as one JSON object, keys sorted by name:
  /// counters as integers, gauges as numbers, histograms as
  /// {count,sum,mean,min,max,p50,p99}.
  void write_json(std::ostream& out) const;

  [[nodiscard]] std::size_t size() const;

 private:
  enum class Kind : unsigned char { counter, gauge, histogram };
  struct Instrument {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<LogHistogram> histogram;
  };

  Instrument& lookup(const std::string& name, Kind kind, double min_value,
                     std::size_t buckets);

  mutable std::mutex mutex_;
  std::map<std::string, Instrument> instruments_;
};

}  // namespace stig::obs
