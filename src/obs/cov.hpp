// Coverage observability — deterministic state-machine edge coverage.
//
// A CovMap records which transitions a run actually exercised, across four
// domains: protocol phase machines (proto), the frame-parser state machine
// (frame), scheduler interleaving classes (sched), and fault-handling
// outcomes (fault). The design follows obs::prof: everything lives in
// fixed-size tables sized at compile time, attachment is a raw pointer, a
// detached hook costs one null check, and an attached hit is allocation-free
// (an open-addressed probe into a fixed slot array). Overflow — too many
// states or edges — never throws on the hot path; it increments `dropped()`.
//
// Determinism contract (mirrors MetricsRegistry::merge_from): per-thread
// maps merged with `merge_from` in a fixed order, then serialized via
// `render_json`, are byte-identical at any job count. `rows()` sorts by
// (domain, from-name, to-name), so neither registration order nor merge
// order leaks into the artifact.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace stig::obs::cov {

/// The instrumented subsystems. Values are stable: they are packed into
/// edge keys and named in artifacts.
enum class Domain : unsigned char {
  proto = 0,  ///< Protocol driver phase transitions (sync2.idle>sync2.signal).
  frame = 1,  ///< FrameParser accept/corrupt/resync transitions.
  sched = 2,  ///< Activation-pattern 2-grams over interleaving classes.
  fault = 3,  ///< Mask/vote/retransmit outcomes.
};

[[nodiscard]] inline constexpr const char* domain_name(Domain d) noexcept {
  switch (d) {
    case Domain::proto: return "proto";
    case Domain::frame: return "frame";
    case Domain::sched: return "sched";
    case Domain::fault: return "fault";
  }
  return "unknown";
}

/// Index into a CovMap's intern table. Ids are map-local: never move them
/// between maps (merge_from re-interns by name).
using StateId = std::uint16_t;

/// Returned when the intern table is full or the name is too long; `hit`
/// with an invalid endpoint counts toward `dropped()` instead of crashing.
inline constexpr StateId kInvalidState = 0xffff;

class CovMap {
 public:
  /// Intern-table capacity. Generous: the six protocols contribute ~20
  /// phase states, frame/sched/fault a dozen more.
  static constexpr std::size_t kMaxStates = 256;
  /// Longest state name, including the protocol prefix and NUL.
  static constexpr std::size_t kNameCap = 48;
  /// Edge-table capacity (power of two; open addressing, linear probe).
  static constexpr std::size_t kMaxEdges = 4096;

  CovMap() noexcept;

  CovMap(const CovMap&) = delete;
  CovMap& operator=(const CovMap&) = delete;

  /// Interns `name` by content; repeated calls return the same id.
  /// Allocation-free. Returns kInvalidState on overflow (dropped_++).
  StateId state(const char* name) noexcept;

  /// Interns "<prefix>.<name>" — protocol-qualified phase states.
  StateId state(const char* prefix, const char* name) noexcept;

  /// Records one traversal of the (d, from, to) edge. Allocation-free,
  /// never throws; invalid endpoints or a full edge table increment
  /// `dropped()` instead.
  void hit(Domain d, StateId from, StateId to) noexcept;

  /// Hits that could not be recorded (state/edge table overflow).
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }
  /// Number of distinct edges recorded.
  [[nodiscard]] std::uint64_t distinct_edges() const noexcept {
    return used_;
  }
  /// Total traversals across all edges.
  [[nodiscard]] std::uint64_t total_hits() const noexcept { return hits_; }

  /// Folds `other` into this map, re-interning states by name so the two
  /// maps' registration orders need not match. Commutative up to counts;
  /// the rendered artifact is identical for any merge order.
  void merge_from(const CovMap& other) noexcept;

  struct Row {
    Domain domain;
    const char* from;  ///< Points into this map's intern table.
    const char* to;
    std::uint64_t count;
  };
  /// All recorded edges, sorted by (domain, from-name, to-name).
  [[nodiscard]] std::vector<Row> rows() const;

  /// Compact sorted COV_*.json artifact in the flat "bench"/"values"
  /// schema stigreport already parses. Edge keys look like
  /// "edge.proto.sync2.idle>sync2.signal"; totals ride along as "edges",
  /// "hits" and "dropped". All keys avoid the informational markers of
  /// obs/metric_keys.hpp, so every value is gateable.
  [[nodiscard]] std::string render_json(const std::string& name) const;

 private:
  struct Slot {
    std::uint32_t key;
    std::uint64_t count;
  };
  static constexpr std::uint32_t kEmptyKey = 0xffffffffu;

  /// Finds or inserts the slot for `key`; nullptr when the table is full.
  Slot* slot_for(std::uint32_t key) noexcept;

  char names_[kMaxStates][kNameCap];
  std::uint16_t state_count_ = 0;
  Slot slots_[kMaxEdges];
  std::size_t used_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t dropped_ = 0;
};

/// The instrumentation hook: null-check-only when detached.
inline void cov_hit(CovMap* map, Domain d, StateId from, StateId to) noexcept {
  if (map != nullptr) map->hit(d, from, to);
}

/// Spelled like the issue tracker's sketch; expands to the inline above.
#define COV_HIT(map, domain, from, to) \
  ::stig::obs::cov::cov_hit((map), (domain), (from), (to))

}  // namespace stig::obs::cov
