// FlightRecorder — a fixed-size ring buffer over the event stream.
//
// Attach it (cheapest-possible sink: one array store per event) and the
// last `capacity` events are always available for a post-mortem: dump them
// as JSONL when a watchdog invariant trips, when the engine throws, or —
// via `install_crash_handler` — when the process takes a fatal signal.
// The black box of the observability stack: it costs nothing to carry and
// answers "what were the robots doing right before it went wrong?".
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "obs/sink.hpp"

namespace stig::obs {

class FlightRecorder final : public EventSink {
 public:
  /// `capacity`: number of most-recent events retained (>= 1).
  explicit FlightRecorder(std::size_t capacity);
  ~FlightRecorder() override;

  void on_event(const Event& e) override;

  [[nodiscard]] std::size_t capacity() const noexcept {
    return ring_.size();
  }
  /// Events currently held (== capacity once the ring has wrapped).
  [[nodiscard]] std::size_t size() const noexcept;
  /// Total events ever seen (size() plus everything overwritten).
  [[nodiscard]] std::uint64_t total_seen() const noexcept { return seen_; }

  /// Retained events, oldest first.
  [[nodiscard]] std::vector<Event> snapshot() const;

  /// Writes the retained events as JSONL (same schema as JsonlEventSink),
  /// oldest first, prefixed by one `flight_recorder` header line carrying
  /// capacity/seen/dropped counts.
  void dump(std::ostream& out) const;
  /// `dump` to a file; returns false on I/O failure.
  [[nodiscard]] bool dump_to_file(const std::string& path) const;

  /// Installs SIGSEGV/SIGBUS/SIGFPE/SIGABRT handlers that dump `recorder`
  /// to `path` before re-raising the default action. One recorder at a
  /// time; the registration clears automatically when it is destroyed.
  /// The handler formats events with snprintf into a pre-opened-path file
  /// — best-effort by nature (a crashed heap can take the recorder with
  /// it), which is the usual flight-recorder trade.
  static void install_crash_handler(FlightRecorder* recorder,
                                    std::string path);
  /// Removes the handlers and forgets the registered recorder.
  static void uninstall_crash_handler();

 private:
  std::vector<Event> ring_;
  std::uint64_t seen_ = 0;  ///< next_ == seen_ % capacity.
};

}  // namespace stig::obs
