// Flat binary event log — the hot-path replacement for JSONL serialization.
//
// `JsonlEventSink` renders ~100 bytes of JSON text per event with a handful
// of temporary strings; at millions of events per run that IS the telemetry
// cost. `BinaryLogSink` instead appends a compact binary record (typically
// 4–30 bytes) to an in-memory buffer: a type byte, a presence mask of
// non-default fields, a zigzag-varint time delta, then only the fields the
// event actually carries (LEB128 varints for integers, raw IEEE bit
// patterns for doubles — exact round-trip by construction). Labels are
// interned once into a string table embedded in the stream.
//
// JSONL happens only at export: `export_jsonl` decodes every record and
// renders it through `JsonlEventSink::to_json`, so the output is
// byte-identical to what the JSONL sink would have written live — replay,
// span and watchdog tooling is untouched (verified across the six-protocol
// matrix in tests/test_obs_binary_log.cpp).
//
// Stream layout:  "STGB" magic + version byte 0x01, then records:
//   0xFE                    label definition: varint length + UTF-8 bytes;
//                           ids are assigned in stream order from 0.
//   type < kEventTypeCount  event record (see on_event).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <ostream>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/sink.hpp"

namespace stig::obs {

/// Buffers the event stream as compact binary records in memory.
class BinaryLogSink final : public EventSink {
 public:
  BinaryLogSink();

  void on_event(const Event& e) override;

  /// The encoded stream (header + records) so far.
  [[nodiscard]] const std::vector<std::uint8_t>& data() const noexcept {
    return buf_;
  }
  [[nodiscard]] std::size_t event_count() const noexcept { return count_; }

  /// Renders every buffered event as JSONL, byte-identical to a live
  /// `JsonlEventSink` fed the same stream.
  void export_jsonl(std::ostream& out) const;

  /// Writes the raw binary stream.
  void write(std::ostream& out) const;

 private:
  std::uint32_t intern_label(const char* label);

  std::vector<std::uint8_t> buf_;
  /// Fast path: literal pointers repeat, so a pointer→id cache skips the
  /// content lookup; the content map keeps ids correct when the same text
  /// arrives via different pointers.
  std::unordered_map<const void*, std::uint32_t> ptr_cache_;
  std::map<std::string, std::uint32_t> label_ids_;
  std::uint64_t prev_t_ = 0;
  std::size_t count_ = 0;
};

/// Decodes a binary event stream back into `Event`s.
///
/// `Event::label` pointers returned by `next` point into the reader's own
/// string table and stay valid for the reader's lifetime.
class BinaryLogReader {
 public:
  /// Throws std::invalid_argument on a bad magic/version header.
  explicit BinaryLogReader(std::span<const std::uint8_t> data);

  /// Decodes the next event into `out`; returns false at end of stream.
  /// Throws std::runtime_error on a truncated or corrupt record.
  bool next(Event& out);

  /// Labels seen so far, in id order.
  [[nodiscard]] const std::deque<std::string>& labels() const noexcept {
    return labels_;
  }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  std::deque<std::string> labels_;  // Stable addresses for Event::label.
  std::uint64_t prev_t_ = 0;
};

}  // namespace stig::obs
