#include "obs/chrome_trace.hpp"

#include <algorithm>

#include "obs/json.hpp"

namespace stig::obs {

ChromeTraceSink::ChromeTraceSink(std::unique_ptr<std::ofstream> owned)
    : owned_(std::move(owned)), out_(owned_.get()) {}

std::unique_ptr<ChromeTraceSink> ChromeTraceSink::open(
    const std::string& path) {
  auto file = std::make_unique<std::ofstream>(path);
  if (!*file) return nullptr;
  return std::unique_ptr<ChromeTraceSink>(
      new ChromeTraceSink(std::move(file)));
}

ChromeTraceSink::~ChromeTraceSink() { flush(); }

void ChromeTraceSink::ensure_thread(std::int64_t robot) {
  if (named_[robot]) return;
  named_[robot] = true;
  entries_.push_back(
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" +
      std::to_string(robot) + ",\"args\":{\"name\":" +
      json_quote("robot " + std::to_string(robot)) + "}}");
}

void ChromeTraceSink::emit_span(std::int64_t robot, const OpenSpan& span,
                                std::uint64_t end) {
  // A span shorter than the trace resolution still gets 1us so it is
  // visible (and so nesting checks see a well-ordered timeline).
  const std::uint64_t dur = std::max<std::uint64_t>(end - span.begin, 1);
  entries_.push_back("{\"name\":" + json_quote(span.label) +
                     ",\"cat\":\"phase\",\"ph\":\"X\",\"ts\":" +
                     std::to_string(span.begin) + ",\"dur\":" +
                     std::to_string(dur) + ",\"pid\":0,\"tid\":" +
                     std::to_string(robot) + "}");
}

void ChromeTraceSink::emit_instant(const Event& e, const std::string& name) {
  ensure_thread(e.robot);
  entries_.push_back("{\"name\":" + json_quote(name) +
                     ",\"cat\":\"signal\",\"ph\":\"i\",\"s\":\"t\",\"ts\":" +
                     std::to_string(e.t) + ",\"pid\":0,\"tid\":" +
                     std::to_string(e.robot) + "}");
}

void ChromeTraceSink::on_event(const Event& e) {
  if (flushed_) return;
  last_t_ = std::max(last_t_, e.t);
  switch (e.type) {
    case EventType::PhaseEnter: {
      ensure_thread(e.robot);
      auto it = open_.find(e.robot);
      if (it != open_.end()) emit_span(e.robot, it->second, e.t);
      open_[e.robot] = OpenSpan{e.label, e.t};
      break;
    }
    case EventType::BitEmitted:
      emit_instant(e, std::string("bit ") + (e.bit != 0 ? "1" : "0") +
                          " -> " +
                          (e.peer >= 0 ? std::to_string(e.peer) : "all"));
      break;
    case EventType::BitDecoded:
      emit_instant(e, std::string("decoded ") + (e.bit != 0 ? "1" : "0") +
                          " from " + std::to_string(e.peer));
      break;
    case EventType::FrameDelivered:
      emit_instant(e, "frame from " + std::to_string(e.peer) + " (" +
                          std::to_string(static_cast<std::uint64_t>(
                              e.value)) +
                          " B)");
      break;
    case EventType::AckObserved:
      emit_instant(e, "ack");
      break;
    case EventType::Teleport:
      emit_instant(e, "teleport");
      break;
    case EventType::FaultInjected:
      emit_instant(e, std::string("fault ") +
                          (e.label != nullptr ? e.label : "?"));
      break;
    case EventType::Retransmit:
      emit_instant(e, std::string(e.label != nullptr ? e.label : "retry") +
                          " #" + std::to_string(e.aux) + " -> " +
                          std::to_string(e.peer));
      break;
    case EventType::MaskedDelivery:
      emit_instant(e, "masked frame from " + std::to_string(e.peer) + " (" +
                          std::to_string(static_cast<std::uint64_t>(
                              e.value)) +
                          " lanes)");
      break;
    case EventType::Collision:
      emit_instant(e, "collision with " + std::to_string(e.peer));
      break;
    case EventType::StepComplete:
      entries_.push_back(
          "{\"name\":\"min_separation\",\"ph\":\"C\",\"ts\":" +
          std::to_string(e.t) + ",\"pid\":0,\"args\":{\"sep\":" +
          json_number(e.value) + "}}");
      break;
    case EventType::Activation:
    case EventType::Move:
      // Per-activation marks would dwarf the phase structure; the JSONL
      // exporter carries them instead.
      break;
  }
}

void ChromeTraceSink::flush() {
  if (flushed_) return;
  flushed_ = true;
  for (const auto& [robot, span] : open_) {
    emit_span(robot, span, last_t_ + 1);
  }
  open_.clear();
  *out_ << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    *out_ << entries_[i] << (i + 1 < entries_.size() ? ",\n" : "\n");
  }
  *out_ << "]}\n";
  out_->flush();
}

}  // namespace stig::obs
