// EventSink — where telemetry events go.
//
// The engine and the protocol drivers hold a raw `EventSink*` that is null
// by default; the hot path pays exactly one branch when telemetry is off
// and one virtual dispatch per event when it is on. Sinks compose through
// `MultiSink`; `CollectSink` buffers events in memory (tests, ad-hoc
// analysis); `CountingSink` discards them (overhead measurement).
//
// Concurrency model: a sink belongs to one simulation, and a simulation
// runs on one thread — sinks are therefore single-threaded by contract and
// take no locks. Parallel batch runs (src/par) follow the same pattern as
// obs::MetricsRegistry: each task wires its own sink into its own
// ChatNetwork and the driver combines the buffered results after the task
// joins. Never share one sink instance across concurrently-running cases.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/event.hpp"

namespace stig::obs {

/// Consumer of a telemetry event stream.
class EventSink {
 public:
  EventSink() = default;
  virtual ~EventSink() = default;

  /// Receives one event. Called on the emitting thread, in timeline order.
  virtual void on_event(const Event& e) = 0;

  /// Finalizes output (exporters override; flushing twice is harmless).
  virtual void flush() {}

 protected:
  // Copyable only through concrete subclasses (sim::Trace is value-like).
  EventSink(const EventSink&) = default;
  EventSink& operator=(const EventSink&) = default;
};

/// Fans one stream out to several sinks (non-owning).
class MultiSink final : public EventSink {
 public:
  MultiSink() = default;
  explicit MultiSink(std::vector<EventSink*> sinks)
      : sinks_(std::move(sinks)) {}

  void add(EventSink* sink) {
    if (sink != nullptr) sinks_.push_back(sink);
  }
  [[nodiscard]] bool empty() const noexcept { return sinks_.empty(); }

  void on_event(const Event& e) override {
    for (EventSink* s : sinks_) s->on_event(e);
  }
  void flush() override {
    for (EventSink* s : sinks_) s->flush();
  }

 private:
  std::vector<EventSink*> sinks_;
};

/// Buffers every event in memory, in arrival order.
class CollectSink final : public EventSink {
 public:
  void on_event(const Event& e) override { events_.push_back(e); }

  [[nodiscard]] const std::vector<Event>& events() const noexcept {
    return events_;
  }
  void clear() { events_.clear(); }

 private:
  std::vector<Event> events_;
};

/// Counts events and drops them — the cheapest possible attached sink, used
/// to measure the engine's telemetry dispatch overhead (bench E1).
class CountingSink final : public EventSink {
 public:
  void on_event(const Event& e) override {
    ++total_;
    ++per_type_[static_cast<unsigned>(e.type)];
  }

  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t count(EventType t) const noexcept {
    return per_type_[static_cast<unsigned>(t)];
  }

 private:
  std::uint64_t total_ = 0;
  std::uint64_t per_type_[kEventTypeCount] = {};
};

}  // namespace stig::obs
