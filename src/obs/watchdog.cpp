#include "obs/watchdog.hpp"

#include <cstring>
#include <iostream>
#include <span>

#include "geom/geom_cache.hpp"
#include "geom/voronoi.hpp"
#include "obs/json.hpp"

namespace stig::obs {

Watchdog::Watchdog(WatchdogOptions options,
                   std::vector<geom::Vec2> t0_positions)
    : options_(options), anchors_(std::move(t0_positions)) {
  if (options_.check_granular && anchors_.size() >= 2) {
    // Shares the configuration-epoch cache with the protocols: the watchdog
    // anchors at the same t0 snapshot SlicedCore already paid for.
    radii_ = geom::GeomCache::local().granular_radii(anchors_);
    granular_disarmed_.assign(anchors_.size(), false);
  } else {
    options_.check_granular = false;
  }
}

void Watchdog::set_flight_recorder(FlightRecorder* recorder,
                                   std::string dump_path) {
  recorder_ = recorder;
  dump_path_ = std::move(dump_path);
}

void Watchdog::violate(WatchdogViolation v) {
  ++total_violations_;
  if (recorder_ != nullptr && !dumped_ && !dump_path_.empty()) {
    dumped_ = true;
    if (!recorder_->dump_to_file(dump_path_)) {
      std::cerr << "watchdog: could not write flight-recorder dump to "
                << dump_path_ << "\n";
    }
  }
  if (options_.abort_on_violation) {
    throw WatchdogError("watchdog: " + v.invariant + " violated at instant " +
                        std::to_string(v.t) + ": " + v.detail);
  }
  if (violations_.size() < options_.max_recorded) {
    violations_.push_back(std::move(v));
  }
}

void Watchdog::check_granular(const Event& e) {
  if (e.robot < 0 || static_cast<std::size_t>(e.robot) >= anchors_.size() ||
      granular_disarmed_[static_cast<std::size_t>(e.robot)]) {
    return;
  }
  const auto i = static_cast<std::size_t>(e.robot);
  const double d = geom::dist(geom::Vec2{e.x, e.y}, anchors_[i]);
  if (d < radii_[i] + options_.granular_slack) return;
  WatchdogViolation v;
  v.invariant = "granular";
  v.t = e.t;
  v.robot = e.robot;
  v.value = d;
  v.detail = "robot " + std::to_string(e.robot) + " left its granular (" +
             std::to_string(d) + " > radius " + std::to_string(radii_[i]) +
             ")";
  violate(std::move(v));
}

void Watchdog::check_crash_silence(const Event& e, const char* activity) {
  if (!options_.check_crash_silence || crash_t_.empty()) return;
  const auto it = crash_t_.find(e.robot);
  if (it == crash_t_.end() || e.t < it->second) return;
  WatchdogViolation v;
  v.invariant = "crash_silence";
  v.t = e.t;
  v.robot = e.robot;
  v.value = static_cast<double>(it->second);
  v.detail = "robot " + std::to_string(e.robot) + " " + activity +
             " at t=" + std::to_string(e.t) +
             " despite crashing at t=" + std::to_string(it->second);
  violate(std::move(v));
}

void Watchdog::on_event(const Event& e) {
  switch (e.type) {
    case EventType::Collision: {
      if (!options_.check_separation) return;
      WatchdogViolation v;
      v.invariant = "separation";
      v.t = e.t;
      v.robot = e.robot;
      v.peer = e.peer;
      v.detail = "collision between robots " + std::to_string(e.robot) +
                 " and " + std::to_string(e.peer);
      violate(std::move(v));
      return;
    }
    case EventType::StepComplete: {
      if (!options_.check_separation || options_.min_separation <= 0.0 ||
          e.value >= options_.min_separation) {
        return;
      }
      WatchdogViolation v;
      v.invariant = "separation";
      v.t = e.t;
      v.value = e.value;
      v.detail = "min separation " + std::to_string(e.value) +
                 " fell below the floor " +
                 std::to_string(options_.min_separation);
      violate(std::move(v));
      return;
    }
    case EventType::Move: {
      check_crash_silence(e, "moved");
      if (options_.check_granular) check_granular(e);
      return;
    }
    case EventType::Activation: {
      check_crash_silence(e, "activated");
      return;
    }
    case EventType::FaultInjected: {
      if (e.label != nullptr && std::strcmp(e.label, "crash") == 0 &&
          e.robot >= 0) {
        // Keep the earliest crash instant: a robot crashes once.
        const auto it = crash_t_.find(e.robot);
        if (it == crash_t_.end() || e.t < it->second) crash_t_[e.robot] = e.t;
      }
      if (options_.reconverge_budget > 0 && e.label != nullptr &&
          std::strncmp(e.label, "corrupt", 7) == 0) {
        // A later corruption re-damages state, so it re-arms the check even
        // if an earlier one already cleared.
        corrupt_pending_t_ = e.t;
      }
      return;
    }
    case EventType::FrameDelivered: {
      if (!corrupt_pending_t_) return;
      const std::uint64_t corrupt_t = *corrupt_pending_t_;
      corrupt_pending_t_.reset();
      if (e.t >= corrupt_t &&
          e.t - corrupt_t > options_.reconverge_budget) {
        WatchdogViolation v;
        v.invariant = "reconverged";
        v.t = e.t;
        v.robot = e.robot;
        v.peer = e.peer;
        v.value = static_cast<double>(e.t - corrupt_t);
        v.detail = "first delivery after the corruption at t=" +
                   std::to_string(corrupt_t) + " took " +
                   std::to_string(e.t - corrupt_t) +
                   " instants, budget is " +
                   std::to_string(options_.reconverge_budget);
        violate(std::move(v));
      }
      return;
    }
    case EventType::MaskedDelivery: {
      if (!options_.check_mask_agreement) return;
      const bool broadcast =
          e.label != nullptr && std::strcmp(e.label, "broadcast") == 0;
      if (e.value < 1.0) {
        WatchdogViolation v;
        v.invariant = "mask_agreement";
        v.t = e.t;
        v.robot = e.robot;
        v.peer = e.peer;
        v.value = e.value;
        v.detail = "masked delivery " + std::to_string(e.aux) +
                   " on stream " + std::to_string(e.peer) + " -> " +
                   std::to_string(e.robot) + " had no agreeing lane";
        violate(std::move(v));
        return;
      }
      const auto key = std::make_tuple(e.robot, e.peer, e.aux, broadcast);
      const auto [it, inserted] = mask_hashes_.emplace(key, e.bit);
      if (!inserted && it->second != e.bit) {
        WatchdogViolation v;
        v.invariant = "mask_agreement";
        v.t = e.t;
        v.robot = e.robot;
        v.peer = e.peer;
        v.value = e.value;
        v.detail = "masked delivery " + std::to_string(e.aux) +
                   " on stream " + std::to_string(e.peer) + " -> " +
                   std::to_string(e.robot) +
                   " re-voted a different payload hash";
        violate(std::move(v));
      }
      return;
    }
    case EventType::Teleport: {
      // Fault injection voids the containment anchor for this robot: the
      // stabilization story explicitly allows it to re-home elsewhere.
      if (options_.check_granular && e.robot >= 0 &&
          static_cast<std::size_t>(e.robot) < granular_disarmed_.size()) {
        granular_disarmed_[static_cast<std::size_t>(e.robot)] = true;
      }
      return;
    }
    case EventType::BitEmitted: {
      check_crash_silence(e, "emitted a bit");
      if (!options_.check_bit_order) return;
      const auto it = last_emit_t_.find(e.robot);
      if (it != last_emit_t_.end() && e.t < it->second) {
        WatchdogViolation v;
        v.invariant = "bit_order";
        v.t = e.t;
        v.robot = e.robot;
        v.value = static_cast<double>(it->second);
        v.detail = "sender " + std::to_string(e.robot) +
                   " emitted a bit at t=" + std::to_string(e.t) +
                   " after one at t=" + std::to_string(it->second);
        violate(std::move(v));
      }
      last_emit_t_[e.robot] = std::max(
          e.t, it == last_emit_t_.end() ? std::uint64_t{0} : it->second);
      return;
    }
    case EventType::BitDecoded: {
      check_crash_silence(e, "decoded a bit");
      if (options_.check_bit_order) {
        const std::pair<std::int64_t, std::int64_t> key{e.robot, e.peer};
        const auto it = last_decode_t_.find(key);
        if (it != last_decode_t_.end() && e.t < it->second) {
          WatchdogViolation v;
          v.invariant = "bit_order";
          v.t = e.t;
          v.robot = e.robot;
          v.peer = e.peer;
          v.value = static_cast<double>(it->second);
          v.detail = "receiver " + std::to_string(e.robot) +
                     " decoded a bit from " + std::to_string(e.peer) +
                     " at t=" + std::to_string(e.t) + " after one at t=" +
                     std::to_string(it->second);
          violate(std::move(v));
        }
        last_decode_t_[key] = std::max(
            e.t, it == last_decode_t_.end() ? std::uint64_t{0} : it->second);
      }
      if (options_.check_framing) {
        encode::FrameParser& parser = streams_[{e.robot, e.peer, e.aux}];
        const std::uint64_t corrupt_before = parser.corrupt_frames();
        parser.push_bit(static_cast<std::uint8_t>(e.bit & 1u));
        (void)parser.take_messages();
        if (parser.corrupt_frames() > corrupt_before) {
          WatchdogViolation v;
          v.invariant = "framing";
          v.t = e.t;
          v.robot = e.robot;
          v.peer = e.peer;
          v.detail = "CRC-corrupt frame on stream " +
                     std::to_string(e.peer) + " -> " +
                     std::to_string(e.robot) + " (addressee " +
                     std::to_string(e.aux) + ")";
          violate(std::move(v));
        }
      }
      return;
    }
    case EventType::AckObserved: {
      if (options_.max_ack_window <= 0.0 ||
          e.value <= options_.max_ack_window) {
        return;
      }
      WatchdogViolation v;
      v.invariant = "ack_window";
      v.t = e.t;
      v.robot = e.robot;
      v.peer = e.peer;
      v.value = e.value;
      v.detail = "ack took " + std::to_string(e.value) +
                 " instants, window is " +
                 std::to_string(options_.max_ack_window);
      violate(std::move(v));
      return;
    }
    default:
      return;
  }
}

void Watchdog::finalize(std::uint64_t end_t) {
  if (!corrupt_pending_t_) return;
  const std::uint64_t corrupt_t = *corrupt_pending_t_;
  if (end_t < corrupt_t + options_.reconverge_budget) return;  // Too short.
  corrupt_pending_t_.reset();
  WatchdogViolation v;
  v.invariant = "reconverged";
  v.t = end_t;
  v.value = static_cast<double>(end_t - corrupt_t);
  v.detail = "no frame delivery within " +
             std::to_string(options_.reconverge_budget) +
             " instants of the corruption at t=" + std::to_string(corrupt_t) +
             " (run ended at t=" + std::to_string(end_t) + ")";
  violate(std::move(v));
}

void Watchdog::report(std::ostream& out) const {
  if (ok()) {
    out << "watchdog: all invariants held\n";
    return;
  }
  out << "watchdog: " << total_violations_ << " violation(s)";
  if (total_violations_ > violations_.size()) {
    out << " (" << violations_.size() << " recorded)";
  }
  out << "\n";
  for (const WatchdogViolation& v : violations_) {
    out << "  [" << v.invariant << "] t=" << v.t << " " << v.detail << "\n";
  }
}

void Watchdog::write_json(std::ostream& out) const {
  out << "{\"ok\": " << (ok() ? "true" : "false")
      << ", \"total_violations\": " << total_violations_
      << ", \"violations\": [";
  for (std::size_t i = 0; i < violations_.size(); ++i) {
    const WatchdogViolation& v = violations_[i];
    out << (i == 0 ? "\n" : ",\n") << "  {\"invariant\": "
        << json_quote(v.invariant) << ", \"t\": " << v.t
        << ", \"robot\": " << v.robot << ", \"peer\": " << v.peer
        << ", \"value\": " << json_number(v.value) << ", \"detail\": "
        << json_quote(v.detail) << "}";
  }
  out << (violations_.empty() ? "" : "\n") << "]}\n";
}

}  // namespace stig::obs
