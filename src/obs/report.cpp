#include "obs/report.hpp"

#include "obs/json.hpp"

namespace stig::obs {

void RunReport::write_json(std::ostream& out) const {
  out << "{\n";
  out << "  \"protocol\": " << json_quote(protocol) << ",\n";
  out << "  \"schedule\": " << json_quote(schedule) << ",\n";
  out << "  \"seed\": " << seed << ",\n";
  out << "  \"robots\": " << robots << ",\n";
  out << "  \"instants\": " << instants << ",\n";
  out << "  \"quiescent\": " << (quiescent ? "true" : "false") << ",\n";
  out << "  \"messages_delivered\": " << messages_delivered << ",\n";
  out << "  \"unfired_decode_faults\": " << unfired_decode_faults << ",\n";
  out << "  \"corruptions_applied\": " << corruptions_applied << ",\n";
  out << "  \"reconverged\": " << (reconverged ? "true" : "false") << ",\n";
  out << "  \"convergence_instants\": " << convergence_instants << ",\n";
  out << "  \"silence_rounds\": " << silence_rounds << ",\n";
  out << "  \"bits_sent\": " << bits_sent << ",\n";
  out << "  \"instants_per_bit\": " << json_number(instants_per_bit)
      << ",\n";
  out << "  \"distance_per_bit\": " << json_number(distance_per_bit)
      << ",\n";
  out << "  \"idle_moves\": " << idle_moves << ",\n";
  out << "  \"min_separation\": " << json_number(min_separation) << ",\n";
  out << "  \"total_distance\": " << json_number(total_distance) << ",\n";
  out << "  \"cov_edges\": " << cov_edges << ",\n";
  out << "  \"cov_hits\": " << cov_hits << ",\n";
  out << "  \"wall_seconds\": " << json_number(wall_seconds) << ",\n";
  out << "  \"per_robot\": [\n";
  for (std::size_t i = 0; i < per_robot.size(); ++i) {
    const RobotReport& r = per_robot[i];
    out << "    {\"robot\": " << i << ", \"activations\": " << r.activations
        << ", \"moves\": " << r.moves << ", \"distance\": "
        << json_number(r.distance) << ", \"idle_activations\": "
        << r.idle_activations << ", \"idle_moves\": " << r.idle_moves
        << ", \"bits_sent\": " << r.bits_sent << ", \"bits_decoded\": "
        << r.bits_decoded << ", \"messages_sent\": " << r.messages_sent
        << ", \"messages_received\": " << r.messages_received
        << ", \"messages_overheard\": " << r.messages_overheard << "}"
        << (i + 1 < per_robot.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";
}

}  // namespace stig::obs
