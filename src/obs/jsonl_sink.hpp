// JSONL event exporter: one JSON object per event, one event per line.
//
//   {"type":"activation","t":3,"robot":0,"x":1.25,"y":-0.5}
//   {"type":"bit_decoded","t":17,"robot":1,"peer":0,"aux":1,"bit":1}
//
// Fields are emitted in a fixed order (type, t, robot, peer, aux, x, y,
// value, bit, label) and only when meaningful for the event type, so the
// stream is deterministic and golden-testable. The file is self-describing:
// external tooling can filter on `type` without knowing the full schema.
#pragma once

#include <fstream>
#include <memory>
#include <ostream>
#include <string>

#include "obs/sink.hpp"

namespace stig::obs {

class JsonlEventSink final : public EventSink {
 public:
  /// Writes to `out` (not owned; must outlive the sink).
  explicit JsonlEventSink(std::ostream& out) : out_(&out) {}

  /// Opens `path` for writing; returns nullptr on I/O failure.
  static std::unique_ptr<JsonlEventSink> open(const std::string& path);

  void on_event(const Event& e) override;
  void flush() override;

  /// Renders one event exactly as `on_event` writes it (minus newline).
  [[nodiscard]] static std::string to_json(const Event& e);

 private:
  JsonlEventSink(std::unique_ptr<std::ofstream> owned);

  std::unique_ptr<std::ofstream> owned_;
  std::ostream* out_;
};

}  // namespace stig::obs
