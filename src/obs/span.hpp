// Message-level span tracing.
//
// A `SpanBuilder` is an EventSink that folds the flat event stream into one
// `MessageSpan` per transmitted frame: the sender's per-bit emission times
// (recovered by running the framing codec over the BitEmitted stream, so a
// frame boundary is found exactly where a receiver would find it), every
// FrameDelivered that closed the frame at a receiver, the sender's protocol
// phases overlapping the transmission window (latency attribution), and the
// Lemma 4.1 acks observed while the frame was in flight.
//
// On top of the spans the builder derives per-robot utilization/silence
// accounting and the run's critical path: the FIFO chain of spans on the
// sender whose delivery finished last, split into transmit time and
// queue-wait time. Everything exports as one JSON document (`write_json`)
// and as nested Chrome-trace spans (`write_chrome_trace` — message spans
// with phase children on the sender's track, delivery instants on the
// receivers' tracks).
//
// The builder works identically on a live run (attach via
// `ChatNetwork::attach_event_sink`) and on a recorded JSONL log replayed
// through `obs::EventLog` (see jsonl_parse.hpp) — pinned by
// tests/test_obs_span.cpp.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "encode/framing.hpp"
#include "obs/sink.hpp"

namespace stig::obs {

/// One FrameDelivered that closed this span at a receiver.
struct SpanDelivery {
  std::int64_t robot = -1;  ///< Receiving robot (simulator index).
  std::uint64_t t = 0;      ///< Instant the frame finished reassembly.
  std::string kind;         ///< "inbox", "overheard" or "broadcast".
};

/// A half-open [begin, end) slice of the sender's phase timeline that
/// overlaps the span's transmission window.
struct PhaseSegment {
  std::string phase;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;

  [[nodiscard]] std::uint64_t instants() const noexcept {
    return end - begin;
  }
};

/// One transmitted frame, from first signaled bit to last delivery.
struct MessageSpan {
  std::uint64_t id = 0;          ///< Dense index in emission-complete order.
  std::int64_t sender = -1;      ///< Simulator index.
  std::int64_t addressee = -1;   ///< Simulator index; -1 for broadcast.
  bool broadcast = false;
  std::size_t payload_bytes = 0;
  std::vector<std::uint64_t> bit_times;  ///< Instant of each BitEmitted.
  std::vector<SpanDelivery> deliveries;  ///< In arrival order.
  std::vector<PhaseSegment> phases;      ///< Sender-phase attribution.
  std::uint64_t ack_count = 0;   ///< Acks the sender observed in-window.
  double ack_total = 0.0;        ///< Sum of their window latencies.

  [[nodiscard]] std::uint64_t start() const { return bit_times.front(); }
  [[nodiscard]] std::uint64_t last_bit() const { return bit_times.back(); }
  /// Instant of the last delivery (the sender's last bit when no receiver
  /// finished reassembly — a truncated log). Not clamped to last_bit():
  /// async senders stamp their final bit after the Lemma 4.1 ack, i.e.
  /// *after* the receiver already delivered the frame.
  [[nodiscard]] std::uint64_t end() const {
    if (deliveries.empty()) return last_bit();
    std::uint64_t e = deliveries.front().t;
    for (const SpanDelivery& d : deliveries) e = std::max(e, d.t);
    return e;
  }
  /// Instants from the first signaled bit to the last delivery.
  [[nodiscard]] std::uint64_t end_to_end() const { return end() - start(); }
};

/// Per-robot activity accounting derived from the spans.
struct RobotUtilization {
  std::int64_t robot = -1;
  std::uint64_t activations = 0;
  std::uint64_t moves = 0;
  std::uint64_t bits_sent = 0;
  std::uint64_t busy_instants = 0;    ///< Inside own transmission windows.
  std::uint64_t silent_instants = 0;  ///< Run length minus busy.
  double utilization = 0.0;           ///< busy / run instants.
};

/// The FIFO chain of spans on the sender whose delivery finished last.
struct CriticalPath {
  std::int64_t sender = -1;
  std::vector<std::uint64_t> span_ids;   ///< In transmission order.
  std::uint64_t total_instants = 0;      ///< First start to last end.
  std::uint64_t transmit_instants = 0;   ///< Sum of transmission windows.
  std::uint64_t wait_instants = 0;       ///< total - transmit (queueing).
};

class SpanBuilder final : public EventSink {
 public:
  void on_event(const Event& e) override;
  /// Finalizes (phase attribution, utilization, critical path). Safe to
  /// call repeatedly; events arriving after a flush reopen the builder.
  void flush() override { finalize(); }
  void finalize();

  [[nodiscard]] const std::vector<MessageSpan>& spans() const {
    return spans_;
  }
  [[nodiscard]] const std::vector<RobotUtilization>& utilization() const {
    return utilization_;
  }
  [[nodiscard]] const CriticalPath& critical_path() const {
    return critical_path_;
  }
  /// Completed instants seen (StepComplete count).
  [[nodiscard]] std::uint64_t instants() const noexcept { return instants_; }
  /// Sender-side frames whose CRC failed on reconstruction (0 on any
  /// well-formed stream; nonzero means the log itself is corrupt).
  [[nodiscard]] std::uint64_t corrupt_frames() const noexcept {
    return corrupt_frames_;
  }

  /// One JSON document: run shape, every span, per-robot utilization and
  /// the critical path. Calls `finalize()`.
  void write_json(std::ostream& out);
  /// Chrome trace_event JSON: nested message/phase spans per sender track,
  /// delivery instants per receiver track. Calls `finalize()`.
  void write_chrome_trace(std::ostream& out);

 private:
  /// One (sender, addressee-lane) bit stream being reassembled.
  struct Lane {
    encode::FrameParser parser;
    std::vector<std::uint64_t> bit_times;  ///< Aligned with pushed bits.
    std::uint64_t boundary = 0;       ///< Bits consumed at last frame end.
    std::vector<std::uint64_t> span_ids;  ///< Spans completed on this lane.
  };
  struct RobotCounters {
    std::uint64_t activations = 0;
    std::uint64_t moves = 0;
    std::uint64_t bits_sent = 0;
  };

  using LaneKey = std::pair<std::int64_t, std::int64_t>;

  /// A FrameDelivered awaiting span matching. Matching happens in
  /// `finalize()` because the async protocols deliver a frame *before* the
  /// sender's final BitEmitted appears in the stream (the sender completes
  /// its bit only after observing the Lemma 4.1 ack).
  struct PendingDelivery {
    std::int64_t robot = -1;
    LaneKey lane;
    std::uint64_t t = 0;
    std::string kind;
  };

  std::map<LaneKey, Lane> lanes_;
  std::vector<PendingDelivery> pending_deliveries_;
  std::map<std::int64_t, std::vector<std::pair<std::uint64_t, std::string>>>
      phase_timeline_;  ///< Per robot: (t, phase) transitions.
  std::map<std::int64_t, std::vector<std::pair<std::uint64_t, double>>>
      acks_;            ///< Per robot: (t, window latency).
  std::map<std::int64_t, RobotCounters> counters_;
  std::vector<MessageSpan> spans_;
  std::vector<RobotUtilization> utilization_;
  CriticalPath critical_path_;
  std::uint64_t instants_ = 0;
  std::uint64_t last_t_ = 0;
  std::uint64_t corrupt_frames_ = 0;
  bool finalized_ = false;
};

}  // namespace stig::obs
