#include "obs/binary_log.hpp"

#include <bit>
#include <cstring>
#include <stdexcept>

#include "encode/varint.hpp"
#include "obs/jsonl_sink.hpp"

namespace stig::obs {
namespace {

constexpr std::uint8_t kMagic[5] = {'S', 'T', 'G', 'B', 0x01};
constexpr std::uint8_t kLabelDef = 0xFE;

// Presence-mask bits: a field is written only when it differs from the
// Event default, so the common records stay a few bytes.
enum : std::uint8_t {
  kHasRobot = 1U << 0,
  kHasPeer = 1U << 1,
  kHasAux = 1U << 2,
  kHasX = 1U << 3,
  kHasY = 1U << 4,
  kHasValue = 1U << 5,
  kHasBit = 1U << 6,
  kHasLabel = 1U << 7,
};

[[nodiscard]] std::uint64_t zigzag(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

[[nodiscard]] std::int64_t unzigzag(std::uint64_t v) noexcept {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

void append_double(std::vector<std::uint8_t>& out, double v) {
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(v);
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(bits >> (8 * i)));
  }
}

/// True when `v`'s bit pattern differs from +0.0 (preserves -0.0 and NaN
/// payloads exactly).
[[nodiscard]] bool nonzero_bits(double v) noexcept {
  return std::bit_cast<std::uint64_t>(v) != 0;
}

}  // namespace

BinaryLogSink::BinaryLogSink() {
  buf_.insert(buf_.end(), std::begin(kMagic), std::end(kMagic));
}

std::uint32_t BinaryLogSink::intern_label(const char* label) {
  const auto cached = ptr_cache_.find(label);
  if (cached != ptr_cache_.end()) return cached->second;
  const auto [it, inserted] = label_ids_.try_emplace(
      std::string(label), static_cast<std::uint32_t>(label_ids_.size()));
  if (inserted) {
    buf_.push_back(kLabelDef);
    encode::append_varint(buf_, it->first.size());
    buf_.insert(buf_.end(), it->first.begin(), it->first.end());
  }
  ptr_cache_.emplace(label, it->second);
  return it->second;
}

void BinaryLogSink::on_event(const Event& e) {
  std::uint32_t label_id = 0;
  if (e.label != nullptr) label_id = intern_label(e.label);

  std::uint8_t mask = 0;
  if (e.robot != -1) mask |= kHasRobot;
  if (e.peer != -1) mask |= kHasPeer;
  if (e.aux != -1) mask |= kHasAux;
  if (nonzero_bits(e.x)) mask |= kHasX;
  if (nonzero_bits(e.y)) mask |= kHasY;
  if (nonzero_bits(e.value)) mask |= kHasValue;
  if (e.bit != 0) mask |= kHasBit;
  if (e.label != nullptr) mask |= kHasLabel;

  buf_.push_back(static_cast<std::uint8_t>(e.type));
  buf_.push_back(mask);
  encode::append_varint(
      buf_, zigzag(static_cast<std::int64_t>(e.t - prev_t_)));
  prev_t_ = e.t;
  if (mask & kHasRobot) encode::append_varint(buf_, zigzag(e.robot));
  if (mask & kHasPeer) encode::append_varint(buf_, zigzag(e.peer));
  if (mask & kHasAux) encode::append_varint(buf_, zigzag(e.aux));
  if (mask & kHasX) append_double(buf_, e.x);
  if (mask & kHasY) append_double(buf_, e.y);
  if (mask & kHasValue) append_double(buf_, e.value);
  if (mask & kHasBit) encode::append_varint(buf_, e.bit);
  if (mask & kHasLabel) encode::append_varint(buf_, label_id);
  ++count_;
}

void BinaryLogSink::export_jsonl(std::ostream& out) const {
  BinaryLogReader reader(buf_);
  Event e;
  while (reader.next(e)) {
    out << JsonlEventSink::to_json(e) << '\n';
  }
}

void BinaryLogSink::write(std::ostream& out) const {
  out.write(reinterpret_cast<const char*>(buf_.data()),
            static_cast<std::streamsize>(buf_.size()));
}

BinaryLogReader::BinaryLogReader(std::span<const std::uint8_t> data)
    : data_(data), pos_(sizeof kMagic) {
  if (data_.size() < sizeof kMagic ||
      std::memcmp(data_.data(), kMagic, sizeof kMagic) != 0) {
    throw std::invalid_argument("BinaryLogReader: bad magic");
  }
}

bool BinaryLogReader::next(Event& out) {
  const auto read_varint = [&]() -> std::uint64_t {
    const auto d = encode::decode_varint(data_.subspan(pos_));
    if (!d) throw std::runtime_error("BinaryLogReader: truncated varint");
    pos_ += d->consumed;
    return d->value;
  };
  const auto read_double = [&]() -> double {
    if (pos_ + 8 > data_.size()) {
      throw std::runtime_error("BinaryLogReader: truncated double");
    }
    std::uint64_t bits = 0;
    for (int i = 0; i < 8; ++i) {
      bits |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 8;
    return std::bit_cast<double>(bits);
  };

  for (;;) {
    if (pos_ >= data_.size()) return false;
    const std::uint8_t tag = data_[pos_++];
    if (tag == kLabelDef) {
      const std::uint64_t len = read_varint();
      if (pos_ + len > data_.size()) {
        throw std::runtime_error("BinaryLogReader: truncated label");
      }
      labels_.emplace_back(reinterpret_cast<const char*>(&data_[pos_]),
                           static_cast<std::size_t>(len));
      pos_ += len;
      continue;
    }
    if (tag >= kEventTypeCount) {
      throw std::runtime_error("BinaryLogReader: unknown record tag");
    }
    if (pos_ >= data_.size()) {
      throw std::runtime_error("BinaryLogReader: truncated record");
    }
    const std::uint8_t mask = data_[pos_++];
    out = Event{};
    out.type = static_cast<EventType>(tag);
    prev_t_ = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(prev_t_) + unzigzag(read_varint()));
    out.t = prev_t_;
    if (mask & kHasRobot) out.robot = unzigzag(read_varint());
    if (mask & kHasPeer) out.peer = unzigzag(read_varint());
    if (mask & kHasAux) out.aux = unzigzag(read_varint());
    if (mask & kHasX) out.x = read_double();
    if (mask & kHasY) out.y = read_double();
    if (mask & kHasValue) out.value = read_double();
    if (mask & kHasBit) out.bit = static_cast<std::uint32_t>(read_varint());
    if (mask & kHasLabel) {
      const std::uint64_t id = read_varint();
      if (id >= labels_.size()) {
        throw std::runtime_error("BinaryLogReader: label id out of range");
      }
      out.label = labels_[static_cast<std::size_t>(id)].c_str();
    }
    return true;
  }
}

}  // namespace stig::obs
