// RunReport — a machine-readable summary of one simulator run.
//
// The JSON the CLI writes with `--report` (and benches embed in their
// BENCH_*.json files): the headline shape numbers of the paper's evaluation
// — instants per bit, distance per bit, idle movement, minimum separation —
// plus per-robot motion/chat counters and wall-clock timing. Fields are
// plain data so any layer can fill one without linking the simulator.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace stig::obs {

/// Per-robot slice of the report.
struct RobotReport {
  std::uint64_t activations = 0;
  std::uint64_t moves = 0;
  double distance = 0.0;
  std::uint64_t idle_activations = 0;
  std::uint64_t idle_moves = 0;
  std::uint64_t bits_sent = 0;
  std::uint64_t bits_decoded = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_received = 0;
  std::uint64_t messages_overheard = 0;
};

struct RunReport {
  // Identification.
  std::string protocol;        ///< e.g. "sync2", "asyncn".
  std::string schedule;        ///< e.g. "synchronous", "bernoulli p=0.5".
  std::uint64_t seed = 0;
  std::size_t robots = 0;

  // Outcome.
  std::uint64_t instants = 0;
  bool quiescent = false;      ///< Every queued message fully transmitted.
  std::uint64_t messages_delivered = 0;
  /// Decode faults armed via inject_decode_fault that never fired (the
  /// robot never decoded its nth signal). A nonzero count means the
  /// harness asked for a corruption the run could not express — usually a
  /// miscalibrated `nth_bit`, and previously a silent no-op.
  std::uint64_t unfired_decode_faults = 0;

  // Self-stabilization (E15-style; all zero when no corruption scheduled).
  std::uint64_t corruptions_applied = 0;  ///< Scheduled corruptions fired.
  bool reconverged = false;  ///< A correct delivery followed the corruption.
  /// Instants from the first corruption to the first subsequent correct
  /// delivery (the convergence-time measure of self-stabilization).
  std::uint64_t convergence_instants = 0;
  /// Trailing movement-signal-free rounds (the silence measure: how long
  /// the swarm has been making only idle moves at the end of the run).
  std::uint64_t silence_rounds = 0;

  // Headline shape numbers (E1/E2/E4-style).
  std::uint64_t bits_sent = 0;         ///< Total completed signals.
  double instants_per_bit = 0.0;
  double distance_per_bit = 0.0;       ///< Total distance / bits sent.
  std::uint64_t idle_moves = 0;        ///< Moves made with an empty outbox.
  double min_separation = 0.0;         ///< Collision-avoidance invariant.
  double total_distance = 0.0;

  // Coverage (filled when a cov::CovMap was attached; 0 when off).
  std::uint64_t cov_edges = 0;  ///< Distinct (domain, from, to) edges hit.
  std::uint64_t cov_hits = 0;   ///< Total edge hits across all domains.

  // Timing (filled by the caller; 0 when unmeasured).
  double wall_seconds = 0.0;

  std::vector<RobotReport> per_robot;

  /// Renders the report as one pretty-printed JSON object.
  void write_json(std::ostream& out) const;
};

}  // namespace stig::obs
