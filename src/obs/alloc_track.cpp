// Global operator new/delete interposition with thread-local counters.
// See alloc_track.hpp for the accounting contract.
//
// Every block is over-allocated by a header (16 bytes, or the alignment for
// over-aligned types) holding the requested size, so frees can be debited
// exactly without malloc_usable_size — the numbers are the *requested*
// bytes, identical across allocators and platforms, which keeps them
// gateable. The counters are trivially-destructible PODs in initial-exec
// TLS: touching them never allocates, so the operators are re-entrancy
// safe from static initializers onward.
#include "obs/alloc_track.hpp"

#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <new>

// Sanitizer runtimes provide their own operator new/delete (and poison
// redzones malloc-side); interposing underneath them would double-count and
// break their bookkeeping. Detection covers GCC (__SANITIZE_*) and Clang
// (__has_feature).
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define STIG_ALLOC_TRACK 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define STIG_ALLOC_TRACK 0
#endif
#endif
#ifndef STIG_ALLOC_TRACK
#define STIG_ALLOC_TRACK 1
#endif

namespace stig::obs::alloc {
namespace {

struct TlsCounters {
  std::uint64_t allocs;
  std::uint64_t frees;
  std::uint64_t bytes;
  std::int64_t live;
  std::int64_t peak;
};

// Zero-initialized, trivially destructible: safe to touch from any
// allocation path, including before main.
thread_local TlsCounters g_tls;

}  // namespace

Counters snapshot() noexcept {
  const TlsCounters& c = g_tls;
  Counters out;
  out.allocs = c.allocs;
  out.frees = c.frees;
  out.bytes = c.bytes;
  out.live_bytes = c.live;
  out.peak_live_bytes = c.peak;
  return out;
}

void reset_peak() noexcept { g_tls.peak = g_tls.live; }

bool active() noexcept { return STIG_ALLOC_TRACK != 0; }

}  // namespace stig::obs::alloc

#if STIG_ALLOC_TRACK

namespace {

// Header must preserve malloc's max_align_t guarantee for ordinary types;
// over-aligned allocations use an alignment-sized header so the returned
// pointer stays aligned.
constexpr std::size_t kHeader =
    alignof(std::max_align_t) > 16 ? alignof(std::max_align_t) : 16;

[[nodiscard]] void* stig_alloc(std::size_t n, std::size_t align) noexcept {
  const std::size_t header = align > kHeader ? align : kHeader;
  void* raw = nullptr;
  if (align > alignof(std::max_align_t)) {
    if (posix_memalign(&raw, align, header + n) != 0) return nullptr;
  } else {
    raw = std::malloc(header + n);
    if (raw == nullptr) return nullptr;
  }
  std::memcpy(raw, &n, sizeof n);
  auto& c = stig::obs::alloc::g_tls;
  ++c.allocs;
  c.bytes += n;
  c.live += static_cast<std::int64_t>(n);
  if (c.live > c.peak) c.peak = c.live;
  return static_cast<char*>(raw) + header;
}

void stig_free(void* p, std::size_t align) noexcept {
  if (p == nullptr) return;
  const std::size_t header = align > kHeader ? align : kHeader;
  char* raw = static_cast<char*>(p) - header;
  std::size_t n = 0;
  std::memcpy(&n, raw, sizeof n);
  auto& c = stig::obs::alloc::g_tls;
  ++c.frees;
  c.live -= static_cast<std::int64_t>(n);
  std::free(raw);
}

[[nodiscard]] void* stig_alloc_or_throw(std::size_t n, std::size_t align) {
  for (;;) {
    void* p = stig_alloc(n, align);
    if (p != nullptr) return p;
    std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) throw std::bad_alloc();
    handler();
  }
}

}  // namespace

void* operator new(std::size_t n) { return stig_alloc_or_throw(n, 0); }
void* operator new[](std::size_t n) { return stig_alloc_or_throw(n, 0); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  return stig_alloc(n, 0);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  return stig_alloc(n, 0);
}
void* operator new(std::size_t n, std::align_val_t a) {
  return stig_alloc_or_throw(n, static_cast<std::size_t>(a));
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return stig_alloc_or_throw(n, static_cast<std::size_t>(a));
}
void* operator new(std::size_t n, std::align_val_t a,
                   const std::nothrow_t&) noexcept {
  return stig_alloc(n, static_cast<std::size_t>(a));
}
void* operator new[](std::size_t n, std::align_val_t a,
                     const std::nothrow_t&) noexcept {
  return stig_alloc(n, static_cast<std::size_t>(a));
}

void operator delete(void* p) noexcept { stig_free(p, 0); }
void operator delete[](void* p) noexcept { stig_free(p, 0); }
void operator delete(void* p, std::size_t) noexcept { stig_free(p, 0); }
void operator delete[](void* p, std::size_t) noexcept { stig_free(p, 0); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  stig_free(p, 0);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  stig_free(p, 0);
}
void operator delete(void* p, std::align_val_t a) noexcept {
  stig_free(p, static_cast<std::size_t>(a));
}
void operator delete[](void* p, std::align_val_t a) noexcept {
  stig_free(p, static_cast<std::size_t>(a));
}
void operator delete(void* p, std::size_t, std::align_val_t a) noexcept {
  stig_free(p, static_cast<std::size_t>(a));
}
void operator delete[](void* p, std::size_t, std::align_val_t a) noexcept {
  stig_free(p, static_cast<std::size_t>(a));
}
void operator delete(void* p, std::align_val_t a,
                     const std::nothrow_t&) noexcept {
  stig_free(p, static_cast<std::size_t>(a));
}
void operator delete[](void* p, std::align_val_t a,
                       const std::nothrow_t&) noexcept {
  stig_free(p, static_cast<std::size_t>(a));
}

#endif  // STIG_ALLOC_TRACK
