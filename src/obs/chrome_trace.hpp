// Chrome trace_event exporter.
//
// Renders the event stream as a JSON Trace Event file loadable by
// chrome://tracing and by Perfetto (ui.perfetto.dev): one "thread" per
// robot, one complete-span ("ph":"X") per protocol phase the robot passes
// through, instant events for bits/frames/acks/teleports/collisions, and a
// process-level counter track for the minimum pairwise separation. One
// simulated instant maps to one microsecond of trace time.
//
// The file is written on `flush()` (and at destruction): the exporter needs
// to see the whole run to close the phase span each robot is still in.
#pragma once

#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "obs/sink.hpp"

namespace stig::obs {

class ChromeTraceSink final : public EventSink {
 public:
  /// Writes to `out` (not owned; must outlive the sink).
  explicit ChromeTraceSink(std::ostream& out) : out_(&out) {}

  /// Opens `path` for writing; returns nullptr on I/O failure.
  static std::unique_ptr<ChromeTraceSink> open(const std::string& path);

  ~ChromeTraceSink() override;

  void on_event(const Event& e) override;

  /// Closes every open phase span and writes the complete JSON document.
  /// Subsequent flushes are no-ops.
  void flush() override;

 private:
  ChromeTraceSink(std::unique_ptr<std::ofstream> owned);

  struct OpenSpan {
    const char* label = nullptr;
    std::uint64_t begin = 0;
  };

  void ensure_thread(std::int64_t robot);
  void emit_span(std::int64_t robot, const OpenSpan& span,
                 std::uint64_t end);
  void emit_instant(const Event& e, const std::string& name);

  std::unique_ptr<std::ofstream> owned_;
  std::ostream* out_;
  std::vector<std::string> entries_;       ///< Rendered traceEvents lines.
  std::map<std::int64_t, OpenSpan> open_;  ///< Current phase per robot.
  std::map<std::int64_t, bool> named_;     ///< thread_name emitted?
  std::uint64_t last_t_ = 0;
  bool flushed_ = false;
};

}  // namespace stig::obs
