// Watchdog — online invariant checking over the event stream.
//
// A Watchdog is an EventSink that verifies the paper's correctness
// invariants *while the run happens*, instead of post-hoc in tests:
//
//   separation   StepComplete's min pairwise separation stays above the
//                configured floor, and no Collision event ever arrives
//                (Lemma 3.x collision avoidance).
//   granular     every Move keeps the robot inside the granular disc of
//                its t0 Voronoi cell (radius = geom::granular_radius);
//                armed only for the granular protocols — Sync2/Async2
//                signal on the segment joining the two robots and the
//                unbounded Async2 variant drifts by design (E8).
//   bit_order    BitEmitted instants are non-decreasing per sender, and
//                BitDecoded instants non-decreasing per (receiver,
//                sender) stream — the monotone ordering every frame
//                reassembly depends on.
//   ack_window   AckObserved latency never exceeds the configured bound
//                (Lemma 4.1's window, widened by observation delay).
//   framing      replaying each receiver's BitDecoded stream through the
//                framing codec never yields a CRC-corrupt frame.
//   crash_silence  a robot the fault plan crash-stopped (FaultInjected with
//                label "crash") never activates, moves, emits or decodes a
//                bit at or after its crash instant — the crash-stop model's
//                defining property.
//   mask_agreement  the redundancy layer's voted deliveries are consistent:
//                two MaskedDelivery events for the same logical stream and
//                delivery ordinal always carry the same payload hash, and
//                every vote has at least one agreeing lane.
//   reconverged  after a transient state corruption (FaultInjected with a
//                "corrupt*" label), some CRC-clean frame delivery follows
//                within the configured instant budget — the self-
//                stabilization contract of docs/STABILIZATION.md. Requires
//                the harness to call finalize(end) so a run that ends
//                without ever recovering is caught too.
//
// In report mode violations accumulate (bounded) and `report()` renders
// them; in abort mode the first violation throws WatchdogError, which
// unwinds out of Engine::step like a collision does. Either way, an
// attached FlightRecorder dumps the last N events to the configured path
// on the first violation — the black-box snapshot of what led up to it.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "encode/framing.hpp"
#include "geom/vec.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/sink.hpp"

namespace stig::obs {

/// Thrown in abort mode on the first violated invariant.
class WatchdogError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct WatchdogOptions {
  /// StepComplete separation below this is a violation. 0 keeps only the
  /// hard floor (Collision events are always violations).
  double min_separation = 0.0;
  bool check_separation = true;
  /// Granular containment. Requires t0 positions at construction; armed
  /// only then. Slack absorbs observation roundoff at the disc edge.
  bool check_granular = false;
  double granular_slack = 1e-9;
  bool check_bit_order = true;
  bool check_framing = true;
  /// Crash-stopped robots stay silent. Harmless without fault injection
  /// (no FaultInjected event ever arms it), so on by default.
  bool check_crash_silence = true;
  /// Voted deliveries agree per stream ordinal. Harmless without the
  /// redundancy layer (no MaskedDelivery events), so on by default.
  bool check_mask_agreement = true;
  /// AckObserved latency above this is a violation; 0 disables.
  double max_ack_window = 0.0;
  /// Reconvergence budget (instants) after a transient corruption: each
  /// FaultInjected event whose label starts with "corrupt" (re-)arms the
  /// check; the next FrameDelivered at or after that instant clears it —
  /// or violates if it arrives more than this many instants later. Call
  /// finalize(end) at end of run to catch corruptions that never cleared.
  /// 0 disables (the default: corruption-free runs never arm it anyway).
  std::uint64_t reconverge_budget = 0;
  /// Throw WatchdogError on the first violation instead of recording.
  bool abort_on_violation = false;
  /// Violations recorded after this many are counted but not stored.
  std::size_t max_recorded = 64;
};

/// One tripped invariant.
struct WatchdogViolation {
  std::string invariant;  ///< "separation", "granular", "bit_order", ...
  std::uint64_t t = 0;
  std::int64_t robot = -1;
  std::int64_t peer = -1;
  double value = 0.0;     ///< Measured quantity (separation, latency, ...).
  std::string detail;     ///< Human-readable one-liner.
};

class Watchdog final : public EventSink {
 public:
  /// `t0_positions` anchor the granular-containment check (center of robot
  /// i's granular = its t0 position, radius = geom::granular_radius);
  /// leave empty when `check_granular` is off.
  explicit Watchdog(WatchdogOptions options,
                    std::vector<geom::Vec2> t0_positions = {});

  void on_event(const Event& e) override;

  /// End-of-run check for the `reconverged` invariant: violates if a
  /// corruption is still awaiting its recovery delivery and the run ran at
  /// least `reconverge_budget` instants past it (a shorter run is merely
  /// inconclusive, not a violation). Idempotent; safe without corruptions.
  void finalize(std::uint64_t end_t);

  /// A corruption fired and no frame delivery has followed it yet.
  [[nodiscard]] bool reconverge_pending() const noexcept {
    return corrupt_pending_t_.has_value();
  }

  [[nodiscard]] bool ok() const noexcept { return total_violations_ == 0; }
  [[nodiscard]] std::uint64_t total_violations() const noexcept {
    return total_violations_;
  }
  [[nodiscard]] const std::vector<WatchdogViolation>& violations()
      const noexcept {
    return violations_;
  }

  /// Dumps `recorder` to `dump_path` on the first violation (not owned;
  /// null detaches).
  void set_flight_recorder(FlightRecorder* recorder, std::string dump_path);

  /// Human-readable verdict: one line per recorded violation plus a
  /// summary; "watchdog: all invariants held" when clean.
  void report(std::ostream& out) const;
  /// Machine-readable verdict (one JSON object).
  void write_json(std::ostream& out) const;

 private:
  void violate(WatchdogViolation v);
  void check_granular(const Event& e);
  void check_crash_silence(const Event& e, const char* activity);

  WatchdogOptions options_;
  std::vector<geom::Vec2> anchors_;        ///< t0 positions.
  std::vector<double> radii_;              ///< Granular radii at t0.
  std::vector<bool> granular_disarmed_;    ///< Set by Teleport (fault).
  std::map<std::int64_t, std::uint64_t> last_emit_t_;
  std::map<std::pair<std::int64_t, std::int64_t>, std::uint64_t>
      last_decode_t_;                      ///< (receiver, sender).
  /// (receiver, sender, addressee) -> replayed stream parser.
  std::map<std::tuple<std::int64_t, std::int64_t, std::int64_t>,
           encode::FrameParser>
      streams_;
  std::map<std::int64_t, std::uint64_t> crash_t_;  ///< robot -> crash time.
  /// Latest corruption instant still awaiting a frame delivery.
  std::optional<std::uint64_t> corrupt_pending_t_;
  /// (receiver, sender, delivery ordinal, broadcast) -> voted payload hash.
  std::map<std::tuple<std::int64_t, std::int64_t, std::int64_t, bool>,
           std::uint32_t>
      mask_hashes_;
  std::vector<WatchdogViolation> violations_;
  std::uint64_t total_violations_ = 0;
  FlightRecorder* recorder_ = nullptr;
  std::string dump_path_;
  bool dumped_ = false;
};

}  // namespace stig::obs
