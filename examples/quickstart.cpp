// Quickstart: two deaf-and-dumb robots chat by moving.
//
// This is the smallest possible use of the library — the Section 3.1
// two-robot synchronous protocol. Build and run:
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>
#include <string>

#include "core/chat_network.hpp"
#include "encode/bits.hpp"

int main() {
  using namespace stig;

  // Two robots in the plane. They have no radio, no speakers, no screens —
  // each can only observe where the other is, and move.
  core::ChatNetworkOptions opt;
  opt.synchrony = core::Synchrony::synchronous;
  core::ChatNetwork net({geom::Vec2{0.0, 0.0}, geom::Vec2{5.0, 0.0}}, opt);

  std::cout << "protocol: Sync2 (Section 3.1) — bit 0 = step right, "
               "bit 1 = step left, then step back\n\n";

  // Queue messages in both directions. Payloads are framed (length + CRC)
  // and transmitted one bit per two instants.
  net.send(0, 1, encode::bytes_of("hello, robot 1!"));
  net.send(1, 0, encode::bytes_of("hi robot 0 :)"));

  // Drive the world until both outboxes drain. Receipt is synchronous with
  // the movements, so quiescent == delivered.
  if (!net.run_until_quiescent(100'000)) {
    std::cerr << "did not converge\n";
    return 1;
  }
  net.run(2);  // Let the final return step settle.

  for (sim::RobotIndex r = 0; r < net.robot_count(); ++r) {
    for (const core::Delivery& d : net.received(r)) {
      std::cout << "robot " << d.to << " received from robot " << d.from
                << ": \""
                << std::string(d.payload.begin(), d.payload.end())
                << "\"\n";
    }
  }

  std::cout << "\ninstants elapsed: " << net.engine().now()
            << ", bits moved by robot 0: " << net.stats(0).bits_sent
            << ", distance traveled by robot 0: "
            << net.engine().trace().stats(0).distance << "\n";
  return 0;
}
