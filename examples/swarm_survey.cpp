// Swarm survey: distributed computation over movement-signals.
//
// The paper's point is that explicit communication "enables the use of
// distributed algorithms among the robots". This example runs one: a
// max-aggregation over sensor readings in a fully anonymous swarm (no IDs,
// no compass — chirality only, the paper's weakest Section 3.4 setting).
//
// Scenario: ten scattered survey robots each hold a local radiation reading.
// Robot 0 (as *we* index it — the robots themselves are anonymous and use
// the SEC-based relative naming) acts as the collector: every robot reports
// its reading by movement-signals; the collector replies to everyone with
// the maximum. Classic converge-cast + broadcast, except the network layer
// is robots wiggling inside their Voronoi granulars.
//
//   ./build/examples/swarm_survey
#include <cstdint>
#include <iomanip>
#include <iostream>
#include <vector>

#include "core/chat_network.hpp"
#include "sim/rng.hpp"

int main() {
  using namespace stig;

  sim::Rng rng(2026);
  const std::size_t n = 10;
  std::vector<geom::Vec2> positions;
  while (positions.size() < n) {
    const geom::Vec2 p{rng.uniform(-40, 40), rng.uniform(-40, 40)};
    bool ok = true;
    for (const geom::Vec2& q : positions) {
      if (geom::dist(p, q) < 4.0) ok = false;
    }
    if (ok) positions.push_back(p);
  }

  core::ChatNetworkOptions opt;
  opt.synchrony = core::Synchrony::synchronous;
  // No visible_ids, no sense_of_direction: ChatNetwork picks the SEC-based
  // relative naming and gives every robot a random private compass.
  core::ChatNetwork net(positions, opt);

  std::vector<std::uint8_t> readings(n);
  std::cout << "survey readings:";
  for (std::size_t i = 0; i < n; ++i) {
    readings[i] = static_cast<std::uint8_t>(rng.uniform_int(10, 200));
    std::cout << ' ' << int{readings[i]};
  }
  std::cout << "\n\nphase 1: converge-cast — everyone reports to the "
               "collector by movement-signals\n";

  const sim::RobotIndex collector = 0;
  for (std::size_t i = 1; i < n; ++i) {
    const std::vector<std::uint8_t> report{readings[i]};
    net.send(i, collector, report);
  }
  if (!net.run_until_quiescent(1'000'000)) return 1;
  net.run(2);

  std::uint8_t max_reading = readings[collector];
  for (const core::Delivery& d : net.received(collector)) {
    max_reading = std::max(max_reading, d.payload.at(0));
  }
  std::cout << "collector decoded " << net.received(collector).size()
            << " reports; swarm maximum = " << int{max_reading} << "\n";

  std::cout << "\nphase 2: broadcast — the collector answers everyone\n";
  for (std::size_t i = 1; i < n; ++i) {
    const std::vector<std::uint8_t> answer{max_reading};
    net.send(collector, i, answer);
  }
  if (!net.run_until_quiescent(1'000'000)) return 1;
  net.run(2);

  bool all_agree = true;
  for (std::size_t i = 1; i < n; ++i) {
    const auto& got = net.received(i);
    const bool ok = !got.empty() && got.back().payload.at(0) == max_reading;
    all_agree = all_agree && ok;
  }
  std::cout << (all_agree ? "every robot now knows the maximum"
                          : "DISAGREEMENT — bug!")
            << "\n\nstats:\n";
  std::cout << std::setw(6) << "robot" << std::setw(12) << "bits sent"
            << std::setw(14) << "bits decoded" << std::setw(12) << "distance"
            << '\n';
  for (std::size_t i = 0; i < n; ++i) {
    std::cout << std::setw(6) << i << std::setw(12)
              << net.stats(i).bits_sent << std::setw(14)
              << net.stats(i).bits_decoded << std::setw(12) << std::fixed
              << std::setprecision(2) << net.engine().trace().stats(i).distance
              << '\n';
  }
  std::cout << "min pairwise separation over the whole run: "
            << net.engine().trace().min_separation()
            << " (collision avoidance held)\n";
  return all_agree ? 0 : 1;
}
