// Rendezvous: use the motion channel to *decide*, then move to *do*.
//
// The paper frames explicit communication as the enabler for classical
// distributed tasks. This example closes the loop: the swarm first agrees
// on a meeting point purely by movement-signals (a leader is elected by
// max-token broadcast; the leader's own position is the rendezvous), then
// leaves protocol mode and navigates there, parking on a ring around the
// leader so nobody collides.
//
//   ./build/examples/rendezvous
#include <algorithm>
#include <iomanip>
#include <iostream>
#include <vector>

#include "core/chat_network.hpp"
#include "geom/angle.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"

namespace {

using namespace stig;

/// Phase-2 program: walk to an assigned parking spot and stay.
class ParkRobot final : public sim::Robot {
 public:
  explicit ParkRobot(geom::Vec2 target_local) : target_(target_local) {}
  void initialize(const sim::Snapshot&) override {}
  geom::Vec2 on_activate(const sim::Snapshot&) override {
    // The anchored frame makes the target a fixed local point; the engine's
    // sigma clamp turns this into a straight walk.
    return target_;
  }

 private:
  geom::Vec2 target_;
};

}  // namespace

int main() {
  sim::Rng rng(515);
  const std::size_t n = 7;
  std::vector<geom::Vec2> start;
  while (start.size() < n) {
    const geom::Vec2 p{rng.uniform(-25, 25), rng.uniform(-25, 25)};
    bool ok = true;
    for (const geom::Vec2& q : start) {
      if (geom::dist(p, q) < 4.0) ok = false;
    }
    if (ok) start.push_back(p);
  }

  // ---- Phase 1: decide, using movement-signals only.
  std::cout << "phase 1: elect a leader by broadcast (anonymous swarm, "
               "chirality only)\n";
  core::ChatNetworkOptions opt;
  opt.synchrony = core::Synchrony::synchronous;
  core::ChatNetwork net(start, opt);

  std::vector<std::uint8_t> tokens(n);
  for (auto& t : tokens) {
    t = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  for (std::size_t i = 0; i < n; ++i) {
    const std::vector<std::uint8_t> one{tokens[i]};
    net.broadcast(i, one);
  }
  if (!net.run_until_quiescent(1'000'000)) return 1;
  net.run(2);

  // Every robot independently picks the max token; the *sender* of that
  // broadcast is the leader — no coordinates ever cross the channel.
  std::size_t leader = 0;
  std::uint8_t best = tokens[0];
  for (std::size_t i = 1; i < n; ++i) {
    if (tokens[i] > best) {
      best = tokens[i];
      leader = i;
    }
  }
  bool agree = true;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint8_t my_best = tokens[i];
    std::size_t my_leader = i;
    for (const core::Delivery& d : net.received(i)) {
      if (d.payload[0] > my_best ||
          (d.payload[0] == my_best && d.from < my_leader)) {
        my_best = d.payload[0];
        my_leader = d.from;
      }
    }
    agree = agree && my_leader == leader;
  }
  std::cout << "leader: robot " << leader << " (token " << int{best}
            << "), all agree: " << (agree ? "yes" : "NO") << "\n\n";
  if (!agree) return 1;

  // ---- Phase 2: act. Everyone walks to a parking ring around the leader.
  std::cout << "phase 2: navigate to a ring around the leader\n";
  const auto pos_view = net.engine().positions();
  const std::vector<geom::Vec2> positions(pos_view.begin(), pos_view.end());
  const double ring = 2.5;
  std::vector<sim::RobotSpec> specs;
  std::vector<std::unique_ptr<sim::Robot>> programs;
  for (std::size_t i = 0; i < n; ++i) {
    sim::RobotSpec s;
    s.position = positions[i];
    s.sigma = 0.5;
    specs.push_back(s);
    geom::Vec2 target_global = positions[leader];
    if (i != leader) {
      const double angle =
          geom::kTwoPi * static_cast<double>(i) / static_cast<double>(n);
      target_global += geom::Vec2{ring * std::cos(angle),
                                  ring * std::sin(angle)};
    }
    // Anchored local frame with identity orientation: local target is the
    // global target relative to the start position.
    programs.push_back(
        std::make_unique<ParkRobot>(target_global - positions[i]));
  }
  sim::Engine walk(specs, std::move(programs),
                   std::make_unique<sim::SynchronousScheduler>());
  walk.run(200);

  double max_err = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double want = i == leader ? 0.0 : ring;
    const double got = geom::dist(walk.positions()[i], positions[leader]);
    max_err = std::max(max_err, std::fabs(got - want));
  }
  std::cout << "all robots parked on the ring (max radial error "
            << std::scientific << std::setprecision(1) << max_err
            << "), min separation during the walk "
            << std::fixed << std::setprecision(2)
            << walk.trace().min_separation() << "\n";
  std::cout << "\nrendezvous complete: the swarm decided by chatting with "
               "its feet, then met up.\n";
  return max_err < 1e-6 ? 0 : 1;
}
