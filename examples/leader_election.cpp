// Leader election over movement-signals.
//
// The paper's thesis: explicit communication "enables the use of
// distributed algorithms among the robots... distributing algorithms that
// use message exchanges". Here is one of the classics — leader election by
// maximum identifier — where the "network" is robots wiggling inside their
// Voronoi granulars.
//
// Each robot draws a random 32-bit token (robots are anonymous to each
// other; the token is application state, not an observable ID). Every robot
// broadcasts its token; every robot then knows all n tokens and elects the
// maximum. A final round of unicasts confirms that all robots agree on the
// winner.
//
// The run is fully instrumented the way a long-lived deployment would be
// (docs/OBSERVABILITY.md): a Watchdog checks the paper's invariants live
// (granular containment included — the sliced protocol keeps every robot
// inside its granular), a SpanBuilder attributes each message's latency,
// and `leader_election_spans.json` is written for `stigreport`/Perfetto.
//
//   ./build/examples/leader_election
#include <algorithm>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <vector>

#include "core/chat_network.hpp"
#include "obs/sink.hpp"
#include "obs/span.hpp"
#include "obs/watchdog.hpp"
#include "sim/rng.hpp"

namespace {

std::vector<std::uint8_t> pack32(std::uint32_t v) {
  return {static_cast<std::uint8_t>(v >> 24),
          static_cast<std::uint8_t>(v >> 16),
          static_cast<std::uint8_t>(v >> 8), static_cast<std::uint8_t>(v)};
}

std::uint32_t unpack32(const std::vector<std::uint8_t>& b) {
  return (std::uint32_t{b[0]} << 24) | (std::uint32_t{b[1]} << 16) |
         (std::uint32_t{b[2]} << 8) | std::uint32_t{b[3]};
}

}  // namespace

int main() {
  using namespace stig;

  sim::Rng rng(4242);
  const std::size_t n = 8;
  std::vector<geom::Vec2> positions;
  while (positions.size() < n) {
    const geom::Vec2 p{rng.uniform(-30, 30), rng.uniform(-30, 30)};
    bool ok = true;
    for (const geom::Vec2& q : positions) {
      if (geom::dist(p, q) < 4.0) ok = false;
    }
    if (ok) positions.push_back(p);
  }

  core::ChatNetworkOptions opt;
  opt.synchrony = core::Synchrony::synchronous;
  // Fully anonymous swarm, chirality only: the hardest naming setting.
  core::ChatNetwork net(positions, opt);

  // Observability: invariant watchdog (granular containment holds for the
  // sliced protocol) + message-span tracing, fanned off one event stream.
  obs::WatchdogOptions wopt;
  wopt.check_granular = true;
  obs::Watchdog watchdog(wopt, positions);
  obs::SpanBuilder spans;
  obs::MultiSink telemetry({&watchdog, &spans});
  net.attach_event_sink(&telemetry);

  std::vector<std::uint32_t> tokens(n);
  std::cout << "tokens:";
  for (std::size_t i = 0; i < n; ++i) {
    tokens[i] = static_cast<std::uint32_t>(rng.uniform_int(0, 0xFFFFFFFF));
    std::cout << " " << std::hex << std::setw(8) << std::setfill('0')
              << tokens[i];
  }
  std::cout << std::dec << std::setfill(' ') << "\n\n";

  std::cout << "round 1: every robot broadcasts its token "
               "(one-to-all on its own diameter)\n";
  for (std::size_t i = 0; i < n; ++i) net.broadcast(i, pack32(tokens[i]));
  if (!net.run_until_quiescent(1'000'000)) return 1;
  net.run(2);

  // Each robot elects the max over its own token and everything received.
  std::vector<std::uint32_t> elected(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint32_t best = tokens[i];
    for (const core::Delivery& d : net.received(i)) {
      best = std::max(best, unpack32(d.payload));
    }
    elected[i] = best;
  }
  const std::uint32_t truth = *std::max_element(tokens.begin(), tokens.end());
  const bool agree =
      std::all_of(elected.begin(), elected.end(),
                  [&](std::uint32_t e) { return e == truth; });
  std::cout << "every robot elected leader token " << std::hex << truth
            << std::dec << ": " << (agree ? "AGREED" : "DISAGREED") << "\n\n";
  if (!agree) return 1;

  std::cout << "round 2: followers send a CONFIRM unicast to the leader\n";
  const auto leader = static_cast<std::size_t>(
      std::max_element(tokens.begin(), tokens.end()) - tokens.begin());
  for (std::size_t i = 0; i < n; ++i) {
    if (i == leader) continue;
    net.send(i, leader, pack32(tokens[i]));
  }
  if (!net.run_until_quiescent(1'000'000)) return 1;
  net.run(2);

  std::size_t confirms = 0;
  for (const core::Delivery& d : net.received(leader)) {
    if (!d.broadcast) ++confirms;
  }
  std::cout << "leader (robot " << leader << ") holds " << confirms
            << " confirmations out of " << n - 1 << "\n\n";

  std::cout << "total instants: " << net.engine().now()
            << ", total distance swum by the swarm: ";
  double dist = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    dist += net.engine().trace().stats(i).distance;
  }
  std::cout << std::fixed << std::setprecision(1) << dist
            << " units — a classical distributed algorithm executed by "
               "deaf, dumb robots.\n\n";

  // The observability verdict: invariants + where the latency went.
  watchdog.report(std::cout);
  spans.finalize();
  const obs::CriticalPath& cp = spans.critical_path();
  std::cout << spans.spans().size() << " message spans; critical path: "
            << "sender " << cp.sender << ", " << cp.span_ids.size()
            << " span(s), " << cp.total_instants << " instants ("
            << cp.transmit_instants << " transmitting, " << cp.wait_instants
            << " queue-waiting)\n";
  std::ofstream span_file("leader_election_spans.json");
  spans.write_json(span_file);
  std::cout << "wrote leader_election_spans.json (feed it to stigreport "
               "or load the --span-trace form in Perfetto)\n";
  return confirms == n - 1 && watchdog.ok() ? 0 : 1;
}
