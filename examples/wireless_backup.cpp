// Wireless backup: movement-signals as a fault-tolerant fallback channel.
//
// The paper's opening motivation: "in the context of robots communicating
// by means of communication (e.g., wireless), since our protocols allow
// robots to explicitly communicate even if their communication devices are
// faulty, our solution can serve as a communication backup."
//
// Scenario: a 6-robot patrol exchanges status reports over a radio that
// (a) loses 30% of messages, (b) has one robot with a dead transceiver, and
// (c) goes through a jamming window. The HybridMessenger retries nothing —
// it simply routes every radio drop through the motion channel, and every
// report still arrives.
//
//   ./build/examples/wireless_backup
#include <iostream>
#include <string>

#include "core/backup_channel.hpp"
#include "core/chat_network.hpp"
#include "core/wireless.hpp"
#include "encode/bits.hpp"
#include "sim/rng.hpp"

int main() {
  using namespace stig;

  sim::Rng rng(7);
  const std::size_t n = 6;
  std::vector<geom::Vec2> positions;
  while (positions.size() < n) {
    const geom::Vec2 p{rng.uniform(-25, 25), rng.uniform(-25, 25)};
    bool ok = true;
    for (const geom::Vec2& q : positions) {
      if (geom::dist(p, q) < 4.0) ok = false;
    }
    if (ok) positions.push_back(p);
  }

  core::ChatNetworkOptions mopt;
  mopt.synchrony = core::Synchrony::synchronous;
  mopt.caps.sense_of_direction = true;  // Patrol robots have compasses.
  core::ChatNetwork motion(positions, mopt);

  core::WirelessOptions wopt;
  wopt.loss_probability = 0.3;  // Flaky environment.
  wopt.jam_from = 0;            // And jammed for the first "hour"...
  wopt.jam_until = 1;           // ...of the mission's first report round.
  core::WirelessChannel radio(n, wopt);
  radio.break_device(3);  // Robot 3's transceiver is dead.

  core::HybridMessenger hybrid(motion, radio);

  std::cout << "sending 3 rounds of all-pairs status reports over a lossy, "
               "jammed radio with one dead device...\n";
  int sent = 0;
  for (int round = 0; round < 3; ++round) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (i == j) continue;
        const std::string text = "r" + std::to_string(round) + ":" +
                                 std::to_string(i) + "->" +
                                 std::to_string(j);
        hybrid.send(i, j, encode::bytes_of(text));
        ++sent;
      }
    }
    // Flush the motion fallbacks accumulated this round.
    if (!hybrid.flush(1'000'000)) {
      std::cerr << "motion channel did not converge\n";
      return 1;
    }
    motion.run(2);
  }

  std::size_t delivered = 0;
  for (std::size_t j = 0; j < n; ++j) delivered += hybrid.received(j).size();

  const auto& st = hybrid.stats();
  std::cout << "\nattempted:            " << st.attempts << " messages\n"
            << "radio delivered:      " << st.wireless_delivered << "\n"
            << "radio dropped:        " << radio.dropped()
            << " (loss + jamming + dead device)\n"
            << "motion fallbacks:     " << st.motion_fallbacks << "\n"
            << "total delivered:      " << delivered << " / " << sent << "\n";

  if (delivered != static_cast<std::size_t>(sent)) {
    std::cerr << "LOST MESSAGES — the backup failed\n";
    return 1;
  }
  std::cout << "\nno message lost: every radio failure was recovered by "
               "the movement-signal backup channel.\n";
  return 0;
}
