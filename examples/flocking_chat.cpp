// Flocking chat: communicate while the swarm travels (Section 5 remark).
//
// "Note that the robots may decide to flock in a certain direction,
// subtracting the agreed upon global flocking movement in order to preserve
// the relative movements used for communication."
//
// Scenario: a convoy of 5 robots flocks North-East at constant velocity
// while continuously exchanging waypoint updates. Receivers subtract the
// agreed drift before decoding, so the movement-signals survive the travel.
//
//   ./build/examples/flocking_chat
#include <iomanip>
#include <iostream>
#include <string>

#include "core/chat_network.hpp"
#include "encode/bits.hpp"
#include "sim/rng.hpp"

int main() {
  using namespace stig;

  sim::Rng rng(99);
  const std::size_t n = 5;
  std::vector<geom::Vec2> start;
  while (start.size() < n) {
    const geom::Vec2 p{rng.uniform(-15, 15), rng.uniform(-15, 15)};
    bool ok = true;
    for (const geom::Vec2& q : start) {
      if (geom::dist(p, q) < 4.0) ok = false;
    }
    if (ok) start.push_back(p);
  }

  core::ChatNetworkOptions opt;
  opt.synchrony = core::Synchrony::synchronous;
  opt.caps.sense_of_direction = true;  // The flock heading is agreed on.
  opt.flock_velocity = geom::Vec2{0.08, 0.05};
  opt.sigma = 0.6;  // Must cover drift + signal amplitude per instant.
  core::ChatNetwork net(start, opt);

  std::cout << "convoy of " << n << " robots flocking at ("
            << opt.flock_velocity.x << ", " << opt.flock_velocity.y
            << ") per instant while chatting\n\n";

  // A rolling conversation: the lead robot (0) streams waypoints to each
  // follower; followers acknowledge.
  for (std::size_t i = 1; i < n; ++i) {
    const std::string wp =
        "waypoint-" + std::to_string(100 + 10 * i) + "N";
    net.send(0, i, encode::bytes_of(wp));
    net.send(i, 0, encode::bytes_of("ack-" + std::to_string(i)));
  }
  if (!net.run_until_quiescent(1'000'000)) {
    std::cerr << "did not converge\n";
    return 1;
  }
  net.run(2);

  std::size_t delivered = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (const core::Delivery& d : net.received(i)) {
      std::cout << "robot " << d.to << " <- robot " << d.from << ": \""
                << std::string(d.payload.begin(), d.payload.end()) << "\"\n";
      ++delivered;
    }
  }

  const double t = static_cast<double>(net.engine().now());
  std::cout << "\nmessages delivered: " << delivered << " in "
            << net.engine().now() << " instants\n";
  std::cout << "convoy displacement while chatting:\n";
  for (std::size_t i = 0; i < n; ++i) {
    const geom::Vec2 drift = net.engine().positions()[i] - start[i];
    std::cout << "  robot " << i << ": (" << std::fixed
              << std::setprecision(2) << drift.x << ", " << drift.y
              << ")  [expected (" << opt.flock_velocity.x * t << ", "
              << opt.flock_velocity.y * t << ")]\n";
  }
  std::cout << "the flock moved as one body and no signal was lost.\n";
  return delivered == 2 * (n - 1) ? 0 : 1;
}
